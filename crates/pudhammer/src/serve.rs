//! Characterization-as-a-service: the long-lived query server behind
//! `repro serve` (ROADMAP item 3).
//!
//! Every answer the batch drivers can compute is, at heart, one profile
//! point: *HC_first for (family, chip, pattern class, data pattern,
//! temperature, timing)*. This module turns that shape into a served
//! artifact: a [`ProfileStore`] (a durable [`CheckpointStore`] of computed
//! points, hydrated into an in-memory cache at open) fronted by a TCP
//! server speaking the [`crate::fleet::wire`] frame protocol, with
//! on-demand simulation for misses scheduled through a bounded admission
//! queue and per-request deadline tokens.
//!
//! Robustness is the design center, not an afterthought:
//!
//! - **Admission control** — misses go through a bounded queue; a full
//!   queue sheds the request with a typed [`QueryStatus::Overloaded`]
//!   response, never a silent drop or an unbounded backlog.
//! - **Deadline propagation** — a query's `deadline_ms` becomes a
//!   [`CancelToken`] installed *thread-locally*
//!   ([`supervisor::install_local`]) in the computing worker, so the
//!   existing `poll_cancel` points inside the bisection cooperatively
//!   abandon a simulation whose client has given up — without disturbing
//!   other workers or a process-global campaign supervisor.
//! - **Retry with backoff** — an injected transient chip fault
//!   (`--fault-seed`) is retried on the *same* chip (the fault clock
//!   carries, exactly like sweep retries), so the returned value is
//!   byte-identical to a fault-free computation; permanent faults return
//!   [`QueryStatus::Unavailable`].
//! - **Graceful degradation** — when the simulation budget is exhausted or
//!   the worker pool is lost, cache hits keep answering and misses get an
//!   explicit [`QueryStatus::Degraded`] verdict instead of a stall.
//! - **Drain on shutdown** — SIGINT/SIGTERM stops accepting, answers
//!   in-flight requests under a drain deadline (past it, in-flight
//!   simulations are cancelled through their tokens), and commits the
//!   profile store through the durable checkpoint barrier before exit.
//!
//! Byte-identity: the server's compute path and `repro query --local` both
//! go through [`resolve_with_retry`], which builds a *fresh* chip per
//! computation — results never depend on request history, cache state, or
//! concurrency.

use std::collections::{HashMap, VecDeque};
use std::io::Write as _;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use pud_bender::TestEnv;
use pud_dram::{profiles, Celsius, DataPattern, Picos, RowAddr};
use pud_observe::json::JsonObject;
use pud_observe::JsonValue;

use crate::experiments::Scale;
use crate::fleet::checkpoint::{CheckpointError, CheckpointHeader, CheckpointStore};
use crate::fleet::supervisor::{self, CancelReason, CancelToken, Cancelled};
use crate::fleet::sweep::{catch_quiet, classify_payload};
use crate::fleet::wire::{Frame, FrameStream, Heartbeat, QueryStatus};
use crate::fleet::{ChipUnderTest, Fleet, Roster};
use crate::patterns::{self, Kernel};

/// The checkpoint stage every profile row is recorded under.
const STAGE: &str = "profile";

/// Sanity cap on the chip index in a key: chip identity is deterministic at
/// any index, but an absurd one is a malformed query, not a real chip.
const MAX_CHIP_INDEX: u32 = 1 << 14;

/// Base real-time backoff between transient-fault retry attempts.
const RETRY_BACKOFF_MS: u64 = 2;

/// Process-wide abandon latch: set when the drain deadline forces the
/// server to give up on in-flight simulations. Wired into every worker's
/// per-request token as its interrupt flag.
static ABANDON: AtomicBool = AtomicBool::new(false);

/// The hammering-pattern class a profile key selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternClass {
    /// Double-sided RowHammer (two adjacent aggressors).
    RhDs,
    /// Single-sided RowHammer.
    RhSs,
    /// Double-sided CoMRA (in-DRAM copy sandwiching the victim).
    ComraDs,
    /// Single-sided CoMRA (adjacent source, far destination).
    ComraSs,
    /// SiMRA-N multi-row activation, N ∈ {2, 4, 8, 16, 32}.
    Simra(u8),
}

impl PatternClass {
    /// Canonical wire text (`rh-ds`, `comra-ss`, `simra-8`, ...).
    pub fn canonical(self) -> String {
        match self {
            PatternClass::RhDs => "rh-ds".to_string(),
            PatternClass::RhSs => "rh-ss".to_string(),
            PatternClass::ComraDs => "comra-ds".to_string(),
            PatternClass::ComraSs => "comra-ss".to_string(),
            PatternClass::Simra(n) => format!("simra-{n}"),
        }
    }

    fn parse(s: &str) -> Result<PatternClass, String> {
        match s {
            "rh-ds" => Ok(PatternClass::RhDs),
            "rh-ss" => Ok(PatternClass::RhSs),
            "comra-ds" => Ok(PatternClass::ComraDs),
            "comra-ss" => Ok(PatternClass::ComraSs),
            _ => {
                let n = s
                    .strip_prefix("simra-")
                    .and_then(|n| n.parse::<u8>().ok())
                    .filter(|n| matches!(n, 2 | 4 | 8 | 16 | 32));
                n.map(PatternClass::Simra).ok_or_else(|| {
                    format!(
                        "unknown pattern class {s:?} (expected rh-ds, rh-ss, comra-ds, \
                         comra-ss, or simra-<2|4|8|16|32>)"
                    )
                })
            }
        }
    }
}

/// The aggressor data pattern a profile key selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DpSpec {
    /// One fixed aggressor pattern (victims hold its negation).
    Fixed(DataPattern),
    /// The full four-pattern worst-case search; the value names the winner.
    Wcdp,
}

impl DpSpec {
    fn canonical(self) -> String {
        match self {
            DpSpec::Fixed(dp) => format!("0x{:02x}", dp.0),
            DpSpec::Wcdp => "wcdp".to_string(),
        }
    }

    fn parse(s: &str) -> Result<DpSpec, String> {
        match s {
            "wcdp" => Ok(DpSpec::Wcdp),
            "0x00" => Ok(DpSpec::Fixed(DataPattern::ZEROS)),
            "0x55" => Ok(DpSpec::Fixed(DataPattern::CHECKER_55)),
            "0xaa" => Ok(DpSpec::Fixed(DataPattern::CHECKER_AA)),
            "0xff" => Ok(DpSpec::Fixed(DataPattern::ONES)),
            other => Err(format!(
                "unknown data pattern {other:?} (expected 0x00, 0x55, 0xaa, 0xff, or wcdp)"
            )),
        }
    }
}

/// One point in the fleet vulnerability profile: the key a query names and
/// the store indexes by. The canonical text form is `;`-separated
/// `key=value` fields with exact integer temperature (centi-Celsius) and
/// timing (picoseconds) so no float formatting ambiguity can split the
/// cache:
///
/// ```text
/// family=SK Hynix-A-4Gb;chip=0;pattern=rh-ds;dp=0x55;temp_cc=8000;aggon_ps=0
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileKey {
    /// Module family key ([`pud_dram::profiles::ModuleProfile::key`]).
    pub family: String,
    /// Chip index within the family.
    pub chip: u32,
    /// Hammering-pattern class.
    pub pattern: PatternClass,
    /// Aggressor data pattern (or the WCDP search).
    pub dp: DpSpec,
    /// Test temperature in centi-Celsius (8000 = the paper's 80 °C).
    pub temp_cc: u32,
    /// Aggressor on-time override in picoseconds; 0 keeps the kernel's
    /// nominal tRAS-coupled on-time.
    pub aggon_ps: u64,
}

impl ProfileKey {
    /// Parses the `;`-separated `key=value` text form. `family`, `chip`,
    /// and `pattern` are required; `dp` defaults to the class's usual
    /// worst pattern (0x00 for SiMRA, 0x55 otherwise), `temp_cc` to 8000,
    /// and `aggon_ps` to 0.
    pub fn parse(text: &str) -> Result<ProfileKey, String> {
        let mut family: Option<String> = None;
        let mut chip: Option<u32> = None;
        let mut pattern: Option<PatternClass> = None;
        let mut dp: Option<DpSpec> = None;
        let mut temp_cc: u32 = 8000;
        let mut aggon_ps: u64 = 0;
        for field in text.split(';') {
            let field = field.trim();
            if field.is_empty() {
                continue;
            }
            let Some((k, v)) = field.split_once('=') else {
                return Err(format!("field {field:?} is not key=value"));
            };
            match k {
                "family" => family = Some(v.to_string()),
                "chip" => {
                    chip = Some(
                        v.parse::<u32>()
                            .ok()
                            .filter(|&c| c < MAX_CHIP_INDEX)
                            .ok_or_else(|| format!("chip must be an integer < {MAX_CHIP_INDEX}"))?,
                    );
                }
                "pattern" => pattern = Some(PatternClass::parse(v)?),
                "dp" => dp = Some(DpSpec::parse(v)?),
                "temp_cc" => {
                    temp_cc = v
                        .parse::<u32>()
                        .ok()
                        .filter(|&t| (0..=20_000).contains(&t))
                        .ok_or_else(|| "temp_cc must be an integer in 0..=20000".to_string())?;
                }
                "aggon_ps" => {
                    aggon_ps = v
                        .parse::<u64>()
                        .map_err(|_| "aggon_ps must be an unsigned integer".to_string())?;
                }
                other => return Err(format!("unknown key field {other:?}")),
            }
        }
        let family = family.ok_or("missing field family")?;
        if !profiles::TESTED_MODULES.iter().any(|p| p.key() == family) {
            return Err(format!("unknown module family {family:?}"));
        }
        let chip = chip.ok_or("missing field chip")?;
        let pattern = pattern.ok_or("missing field pattern")?;
        let dp = dp.unwrap_or(DpSpec::Fixed(match pattern {
            PatternClass::Simra(_) => DataPattern::ZEROS,
            _ => DataPattern::CHECKER_55,
        }));
        Ok(ProfileKey {
            family,
            chip,
            pattern,
            dp,
            temp_cc,
            aggon_ps,
        })
    }

    /// The canonical text form: fixed field order, every field explicit.
    /// Two queries naming the same point always canonicalize identically —
    /// this string is the store key.
    pub fn canonical(&self) -> String {
        format!(
            "family={};chip={};pattern={};dp={};temp_cc={};aggon_ps={}",
            self.family,
            self.chip,
            self.pattern.canonical(),
            self.dp.canonical(),
            self.temp_cc,
            self.aggon_ps,
        )
    }
}

/// The typed outcome of resolving one profile key — what becomes a
/// [`Frame::Response`] on the wire, and what `repro query --local` prints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resolution {
    /// The verdict.
    pub status: QueryStatus,
    /// Whether the value came from the profile store.
    pub cached: bool,
    /// The rendered profile value (empty unless `Ok`).
    pub value: String,
    /// Human-readable detail for non-`Ok` verdicts.
    pub detail: String,
    /// Transient-fault retries spent computing.
    pub retries: u32,
}

impl Resolution {
    fn ok(value: String, retries: u32) -> Resolution {
        Resolution {
            status: QueryStatus::Ok,
            cached: false,
            value,
            detail: String::new(),
            retries,
        }
    }

    fn verdict(status: QueryStatus, detail: impl Into<String>) -> Resolution {
        Resolution {
            status,
            cached: false,
            value: String::new(),
            detail: detail.into(),
            retries: 0,
        }
    }

    /// Renders this resolution as the response frame for query `id`.
    pub fn response(&self, id: u64) -> Frame {
        Frame::Response {
            id,
            status: self.status,
            cached: self.cached,
            value: self.value.clone(),
            detail: self.detail.clone(),
        }
    }
}

/// Builds the chip a key names, fresh (no history). The chip is identical
/// to the same `(family, chip_index)` slot of any fleet built from
/// `scale.fleet` — chip state derives from the fleet seed and identity
/// alone, never from fleet shape — so served values are byte-identical to
/// driver-computed ones.
fn build_chip(scale: &Scale, key: &ProfileKey) -> Result<ChipUnderTest, String> {
    let mut cfg = scale.fleet;
    cfg.roster = Roster::PerFamily;
    cfg.chips_per_family = key.chip + 1;
    let family = key.family.clone();
    let fleet = Fleet::build_filtered(cfg, move |p| p.key() == family);
    fleet
        .chips
        .into_iter()
        .find(|c| c.chip_index == key.chip)
        .ok_or_else(|| format!("unknown module family {:?}", key.family))
}

/// Selects the deterministic (kernel, victim) pair for a pattern class on
/// a chip: the first sampled victim the class's kernel constructor accepts
/// (SiMRA: the first group-search kernel's first sandwiched victim).
fn select_kernel(
    chip: &mut ChipUnderTest,
    class: PatternClass,
) -> Result<(Kernel, RowAddr), String> {
    if let PatternClass::Simra(n) = class {
        if !chip.profile.supports_simra() {
            return Err(format!(
                "family {:?} does not support multi-row activation",
                chip.profile.key()
            ));
        }
        let sas = chip.tested_subarrays();
        let sa = sas.get(1).copied().or_else(|| sas.first().copied());
        let sa = sa.ok_or("chip has no tested subarrays")?;
        let kernels = patterns::simra_ds_kernels(chip.exec().chip(), sa, n);
        let kernel = *kernels
            .first()
            .ok_or("no SiMRA group with sandwiched victims in the tested subarray")?;
        let (sandwiched, _) = patterns::simra_victims(chip.exec().chip(), &kernel);
        let victim = *sandwiched.first().ok_or("SiMRA group lost its victims")?;
        return Ok((kernel, victim));
    }
    for victim in chip.victim_rows() {
        let kernel = match class {
            PatternClass::RhDs => patterns::rowhammer_ds_for(chip.exec().chip(), victim),
            PatternClass::RhSs => patterns::rowhammer_ss_for(chip.exec().chip(), victim),
            PatternClass::ComraDs => patterns::comra_ds_for(chip.exec().chip(), victim, false),
            PatternClass::ComraSs => patterns::comra_ss_for(
                chip.exec().chip(),
                victim,
                patterns::DEFAULT_FAR_OFFSET,
                false,
            ),
            PatternClass::Simra(_) => unreachable!("handled above"),
        };
        if let Some(kernel) = kernel {
            return Ok((kernel, victim));
        }
    }
    Err("no sampled victim admits this pattern class".to_string())
}

/// One measurement attempt: builds nothing, retries nothing — panics with
/// a typed `ExecError` on an injected chip fault and unwinds with
/// [`Cancelled`] past an expired deadline, exactly like a sweep unit.
fn measure(scale: &Scale, key: &ProfileKey, chip: &mut ChipUnderTest) -> Result<String, String> {
    chip.set_env(
        TestEnv::characterization().at_temperature(Celsius(f64::from(key.temp_cc) / 100.0)),
    );
    let bank = chip.bank();
    let (kernel, victim) = select_kernel(chip, key.pattern)?;
    let kernel = if key.aggon_ps > 0 {
        kernel.with_t_aggon(Picos(key.aggon_ps))
    } else {
        kernel
    };
    let fmt_hc = |hc: Option<u64>| hc.map_or("none".to_string(), |n| n.to_string());
    Ok(match key.dp {
        DpSpec::Wcdp => {
            let w = crate::wcdp::find_wcdp(chip.exec(), bank, &kernel, victim, &scale.search);
            format!(
                "victim={} wcdp=0x{:02x} hc_first={}",
                victim.0,
                w.pattern.0,
                fmt_hc(w.hc)
            )
        }
        DpSpec::Fixed(dp) => {
            let hc = crate::hcfirst::measure_hc_first(
                chip.exec(),
                bank,
                &kernel,
                victim,
                dp,
                dp.negated(),
                &scale.search,
            );
            format!("victim={} hc_first={}", victim.0, fmt_hc(hc))
        }
    })
}

/// Resolves a profile key by on-demand simulation: fresh chip, transient
/// faults retried with backoff on the *same* chip (the fault clock
/// carries, so the returned value equals the fault-free one), typed
/// verdicts for everything else. This is the single compute path shared by
/// the server's workers and `repro query --local` — byte-identity between
/// the two is structural, not tested-in.
///
/// Cancellation comes from whatever supervisor token is installed (the
/// server installs a per-request one thread-locally): a deadline unwind
/// resolves to [`QueryStatus::Expired`], an interrupt unwind (the drain
/// abandon latch) to [`QueryStatus::Unavailable`].
pub fn resolve_with_retry(scale: &Scale, key: &ProfileKey) -> Resolution {
    let mut chip = match build_chip(scale, key) {
        Ok(chip) => chip,
        Err(detail) => return Resolution::verdict(QueryStatus::BadRequest, detail),
    };
    let mut retries = 0u32;
    loop {
        match catch_quiet(|| measure(scale, key, &mut chip)) {
            Ok(Ok(value)) => return Resolution::ok(value, retries),
            Ok(Err(detail)) => return Resolution::verdict(QueryStatus::BadRequest, detail),
            Err(payload) => {
                let payload = match payload.downcast::<Cancelled>() {
                    Ok(cancelled) => {
                        return match cancelled.reason {
                            CancelReason::DeadlineExpired => Resolution::verdict(
                                QueryStatus::Expired,
                                "deadline expired during simulation",
                            ),
                            CancelReason::Interrupted => Resolution::verdict(
                                QueryStatus::Unavailable,
                                "simulation abandoned by shutdown drain",
                            ),
                        };
                    }
                    Err(payload) => payload,
                };
                let (transient, message) = classify_payload(payload);
                if transient && retries < scale.max_retries {
                    retries += 1;
                    pud_observe::counter("serve.retries").incr();
                    std::thread::sleep(Duration::from_millis(
                        (RETRY_BACKOFF_MS << (retries - 1)).min(50),
                    ));
                    continue;
                }
                return Resolution::verdict(
                    QueryStatus::Unavailable,
                    format!("simulation failed: {message}"),
                );
            }
        }
    }
}

/// The durable profile store: a [`CheckpointStore`] (stage `profile`, chip
/// column = the canonical key text) hydrated into an in-memory map at
/// open. Lookups are answered from the map; inserts write through to the
/// append log immediately (surviving kill -9 after the line flush) and
/// become commit-barrier-durable at the next [`ProfileStore::commit`].
pub struct ProfileStore {
    store: CheckpointStore,
    cache: Mutex<HashMap<String, String>>,
}

impl ProfileStore {
    /// Opens (or creates) the store at `path`, verifying its header
    /// against the serving fleet's fingerprint — a store computed against
    /// a differently-shaped fleet is rejected, exactly like a checkpoint
    /// resume. A salvageably-damaged file self-heals at open (tail rows
    /// are dropped and re-computed on demand).
    pub fn open(
        path: &Path,
        scale: &Scale,
        scale_label: &str,
    ) -> Result<ProfileStore, CheckpointError> {
        let header = CheckpointHeader {
            target: "serve".to_string(),
            scale: scale_label.to_string(),
            fingerprint: scale.fleet.fingerprint(),
            fault_seed: scale.fleet.fault.map(|f| f.seed),
            shard: None,
        };
        let store = CheckpointStore::open(path, header)?;
        let mut cache = HashMap::new();
        for (stage, key, data) in store.sorted_rows() {
            if stage != STAGE {
                continue;
            }
            if let Some(value) = data.get("v").and_then(JsonValue::as_str) {
                cache.insert(key.to_string(), value.to_string());
            }
        }
        Ok(ProfileStore {
            store,
            cache: Mutex::new(cache),
        })
    }

    /// The cached value for a canonical key, if this point was ever
    /// computed (this run or any previous one).
    pub fn hit(&self, canonical: &str) -> Option<String> {
        self.cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(canonical)
            .cloned()
    }

    /// Records a computed value: visible to subsequent lookups immediately,
    /// appended (write+flush) to the log, committed at the next barrier.
    pub fn insert(&self, canonical: &str, value: &str) {
        self.cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(canonical.to_string(), value.to_string());
        self.store.record(
            STAGE,
            canonical,
            &JsonObject::new().str("v", value).finish(),
        );
    }

    /// Number of cached profile points.
    pub fn len(&self) -> usize {
        self.cache.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the store holds no points yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs the durable commit barrier (temp file + fsync + rename).
    pub fn commit(&self) {
        self.store.commit();
    }

    /// Takes the latched write error, if appending or committing failed.
    pub fn take_write_error(&self) -> Option<crate::fleet::checkpoint::WriteFailure> {
        self.store.take_write_error()
    }
}

/// One admitted compute job.
struct Job {
    key: ProfileKey,
    canonical: String,
    deadline: Option<Instant>,
    reply: mpsc::Sender<Resolution>,
}

enum Popped {
    Job(Box<Job>),
    Empty,
    Closed,
}

/// The bounded admission queue: `submit` never blocks (a full or closed
/// queue rejects, which the caller turns into a typed shed), `pop` blocks
/// with a timeout so workers notice shutdown.
struct Admission {
    inner: Mutex<(VecDeque<Box<Job>>, bool)>,
    cond: Condvar,
    capacity: usize,
}

impl Admission {
    fn new(capacity: usize) -> Admission {
        Admission {
            inner: Mutex::new((VecDeque::new(), false)),
            cond: Condvar::new(),
            capacity,
        }
    }

    /// Admits a job, or returns it when the queue is full (shed as
    /// `Overloaded`) or closed (shed as `Unavailable` — the server is
    /// draining).
    fn submit(&self, job: Box<Job>) -> Result<(), Box<Job>> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.1 || inner.0.len() >= self.capacity {
            return Err(job);
        }
        inner.0.push_back(job);
        self.cond.notify_one();
        Ok(())
    }

    fn pop(&self, timeout: Duration) -> Popped {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let (mut inner, _) = self
            .cond
            .wait_timeout_while(inner, timeout, |(q, closed)| q.is_empty() && !*closed)
            .unwrap_or_else(|e| e.into_inner());
        match inner.0.pop_front() {
            Some(job) => Popped::Job(job),
            None if inner.1 => Popped::Closed,
            None => Popped::Empty,
        }
    }

    /// Closes admission: queued jobs still drain, new submissions reject.
    fn close(&self) {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).1 = true;
        self.cond.notify_all();
    }

    fn is_empty(&self) -> bool {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .0
            .is_empty()
    }
}

/// Configuration of one [`run`] invocation.
pub struct ServeConfig {
    /// Experiment scale for on-demand computation (fleet seed, search
    /// parameters, fault injection, retry budget).
    pub scale: Scale,
    /// Scale label recorded in the store header (`quick` / `full`).
    pub scale_label: String,
    /// Profile store path.
    pub store_path: std::path::PathBuf,
    /// Listen address (`host:port`; port 0 picks a free one — the bound
    /// address is printed as `serve: listening on <addr>`).
    pub listen: String,
    /// Compute worker threads.
    pub workers: usize,
    /// Admission queue capacity; a full queue sheds with `Overloaded`.
    /// Capacity 0 sheds every miss — a cache-only server.
    pub queue_depth: usize,
    /// How long a shutdown waits for in-flight requests before cancelling
    /// the remaining simulations.
    pub drain_deadline: Duration,
    /// On-demand simulation budget: past this many computations the server
    /// degrades (cache hits only). `None` is unlimited.
    pub sim_budget: Option<u64>,
    /// Upper bound a connection handler waits for a compute verdict
    /// (deadline-less requests): past it the client gets `Expired`.
    pub max_wait: Duration,
    /// Idle-connection timeout (slow-loris guard): a connection that
    /// completes no frame this long is closed.
    pub idle_timeout: Duration,
    /// The external interrupt flag (SIGINT/SIGTERM latch) that triggers
    /// the drain.
    pub interrupt: &'static AtomicBool,
}

impl ServeConfig {
    /// Defaults for `scale` at `store_path`, listening on an ephemeral
    /// port, draining against `interrupt`.
    pub fn new(
        scale: Scale,
        store_path: std::path::PathBuf,
        interrupt: &'static AtomicBool,
    ) -> ServeConfig {
        ServeConfig {
            scale,
            scale_label: "quick".to_string(),
            store_path,
            listen: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 64,
            drain_deadline: Duration::from_secs(5),
            sim_budget: None,
            max_wait: Duration::from_secs(60),
            idle_timeout: Duration::from_secs(30),
            interrupt: &ABANDON, // placeholder; overwritten below
        }
        .with_interrupt(interrupt)
    }

    fn with_interrupt(mut self, interrupt: &'static AtomicBool) -> ServeConfig {
        self.interrupt = interrupt;
        self
    }
}

/// What one [`run`] did — the numbers behind the exit-code decision and
/// the shutdown footer.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ServeSummary {
    /// Queries answered (any status).
    pub queries: u64,
    /// Answered from the profile store.
    pub cache_hits: u64,
    /// Computed on demand (successfully).
    pub computed: u64,
    /// Shed with `Overloaded`.
    pub shed: u64,
    /// Expired (client deadline or wait budget).
    pub expired: u64,
    /// Answered `Degraded` (budget exhausted / worker pool lost).
    pub degraded: u64,
    /// Answered `Unavailable`.
    pub unavailable: u64,
    /// Rejected as `BadRequest`.
    pub bad_request: u64,
    /// Profile points in the store at shutdown.
    pub store_points: u64,
    /// The drain deadline forced abandoning in-flight work.
    pub forced_abandon: bool,
    /// The store latched a write error (its content may be incomplete).
    pub write_error: Option<String>,
}

struct Counters {
    queries: AtomicU64,
    cache_hits: AtomicU64,
    computed: AtomicU64,
    shed: AtomicU64,
    expired: AtomicU64,
    degraded: AtomicU64,
    unavailable: AtomicU64,
    bad_request: AtomicU64,
}

impl Counters {
    fn new() -> Counters {
        Counters {
            queries: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            computed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            unavailable: AtomicU64::new(0),
            bad_request: AtomicU64::new(0),
        }
    }

    fn bump(&self, status: QueryStatus, cached: bool) {
        self.queries.fetch_add(1, Ordering::SeqCst);
        pud_observe::counter("serve.queries").incr();
        let (local, global) = match status {
            QueryStatus::Ok if cached => (&self.cache_hits, "serve.cache_hits"),
            QueryStatus::Ok => (&self.computed, "serve.computed"),
            QueryStatus::Overloaded => (&self.shed, "serve.shed"),
            QueryStatus::Expired => (&self.expired, "serve.expired"),
            QueryStatus::Degraded => (&self.degraded, "serve.degraded"),
            QueryStatus::Unavailable => (&self.unavailable, "serve.unavailable"),
            QueryStatus::BadRequest => (&self.bad_request, "serve.bad_request"),
        };
        local.fetch_add(1, Ordering::SeqCst);
        pud_observe::counter(global).incr();
    }
}

struct Shared {
    scale: Scale,
    store: ProfileStore,
    admission: Admission,
    counters: Counters,
    draining: AtomicBool,
    /// Jobs popped by a worker and not yet replied.
    in_flight: AtomicUsize,
    /// Live compute workers; zero (without draining) means degraded.
    workers_alive: AtomicUsize,
    /// Simulation attempts consumed against `sim_budget`.
    sim_spent: AtomicU64,
    sim_budget: Option<u64>,
    max_wait: Duration,
    idle_timeout: Duration,
}

impl Shared {
    fn degraded(&self) -> Option<&'static str> {
        if self.workers_alive.load(Ordering::SeqCst) == 0 {
            return Some("worker pool lost");
        }
        if let Some(budget) = self.sim_budget {
            if self.sim_spent.load(Ordering::SeqCst) >= budget {
                return Some("simulation budget exhausted");
            }
        }
        None
    }
}

/// Decrements a counter on drop — keeps `in_flight`/connection accounting
/// exact even across unwinds.
struct CountGuard<'a>(&'a AtomicUsize);

impl Drop for CountGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn worker_loop(shared: &Shared) {
    let _alive = CountGuard(&shared.workers_alive);
    loop {
        match shared.admission.pop(Duration::from_millis(100)) {
            Popped::Closed => return,
            Popped::Empty => continue,
            Popped::Job(job) => {
                shared.in_flight.fetch_add(1, Ordering::SeqCst);
                let _in_flight = CountGuard(&shared.in_flight);
                let resolution = serve_job(shared, &job);
                // A gone client (handler timed out and closed) is fine —
                // the verdict is simply dropped with it.
                let _ = job.reply.send(resolution);
            }
        }
    }
}

fn serve_job(shared: &Shared, job: &Job) -> Resolution {
    // Another worker may have computed the same point while this job
    // queued; a second computation would return the identical bytes, so
    // answering from the store is both correct and cheaper.
    if let Some(value) = shared.store.hit(&job.canonical) {
        return Resolution {
            cached: true,
            ..Resolution::ok(value, 0)
        };
    }
    if ABANDON.load(Ordering::SeqCst) {
        return Resolution::verdict(
            QueryStatus::Unavailable,
            "simulation abandoned by shutdown drain",
        );
    }
    let remaining = match job.deadline {
        Some(deadline) => {
            let now = Instant::now();
            if now >= deadline {
                return Resolution::verdict(QueryStatus::Expired, "deadline expired while queued");
            }
            Some(deadline - now)
        }
        None => None,
    };
    // Reserve one unit of simulation budget; refusal degrades.
    if let Some(budget) = shared.sim_budget {
        let reserved = shared
            .sim_spent
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |spent| {
                (spent < budget).then_some(spent + 1)
            });
        if reserved.is_err() {
            return Resolution::verdict(QueryStatus::Degraded, "simulation budget exhausted");
        }
    }
    // The per-request token: the client's deadline plus the process-wide
    // abandon latch, installed thread-locally so concurrent workers never
    // stomp each other (or a process-global campaign supervisor).
    let mut token = CancelToken::new().with_interrupt_flag(&ABANDON);
    if let Some(remaining) = remaining {
        token = token.with_deadline(remaining);
    }
    let _guard = supervisor::install_local(token);
    let resolution = resolve_with_retry(&shared.scale, &job.key);
    if resolution.status == QueryStatus::Ok {
        shared.store.insert(&job.canonical, &resolution.value);
    }
    resolution
}

fn answer(shared: &Shared, key_text: &str, deadline_ms: u64) -> Resolution {
    let _span = pud_observe::span("serve.request_ns");
    let key = match ProfileKey::parse(key_text) {
        Ok(key) => key,
        Err(detail) => return Resolution::verdict(QueryStatus::BadRequest, detail),
    };
    let canonical = key.canonical();
    // Cache hits answer inline on the connection thread: they never queue,
    // never consume simulation budget, and keep working while degraded or
    // draining.
    if let Some(value) = shared.store.hit(&canonical) {
        return Resolution {
            cached: true,
            ..Resolution::ok(value, 0)
        };
    }
    if shared.draining.load(Ordering::SeqCst) {
        return Resolution::verdict(QueryStatus::Unavailable, "server draining");
    }
    if let Some(why) = shared.degraded() {
        return Resolution::verdict(QueryStatus::Degraded, why);
    }
    let deadline = (deadline_ms > 0).then(|| Instant::now() + Duration::from_millis(deadline_ms));
    let (reply, verdict) = mpsc::channel();
    let job = Box::new(Job {
        key,
        canonical,
        deadline,
        reply,
    });
    if shared.admission.submit(job).is_err() {
        let status = if shared.draining.load(Ordering::SeqCst) {
            // close() raced the drain check above.
            return Resolution::verdict(QueryStatus::Unavailable, "server draining");
        } else {
            QueryStatus::Overloaded
        };
        return Resolution::verdict(status, "admission queue full; retry later");
    }
    // Wait bounded: the client deadline (plus grace so the worker's own
    // Expired verdict wins the race), capped by the handler budget. Never
    // indefinite.
    let wait = match deadline {
        Some(d) => (d.saturating_duration_since(Instant::now()) + Duration::from_millis(250))
            .min(shared.max_wait),
        None => shared.max_wait,
    };
    match verdict.recv_timeout(wait) {
        Ok(resolution) => resolution,
        Err(mpsc::RecvTimeoutError::Timeout) => Resolution::verdict(
            QueryStatus::Expired,
            "no verdict within the handler wait budget",
        ),
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            Resolution::verdict(QueryStatus::Unavailable, "worker pool lost")
        }
    }
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    // A frame is several small writes; leaving Nagle on turns every cache
    // hit into a delayed-ACK round trip (~40 ms each way).
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let frames = FrameStream::spawn(read_half);
    let mut writer = &stream;
    let mut last_activity = Instant::now();
    loop {
        if ABANDON.load(Ordering::SeqCst) {
            break;
        }
        match frames.next_within(Duration::from_millis(200)) {
            None => {
                if shared.draining.load(Ordering::SeqCst) {
                    break;
                }
                if last_activity.elapsed() >= shared.idle_timeout {
                    // Slow-loris guard: a connection making no frame
                    // progress is closed, freeing its handler thread.
                    break;
                }
            }
            Some(Heartbeat::Frame(Frame::Query {
                id,
                key,
                deadline_ms,
            })) => {
                last_activity = Instant::now();
                let resolution = answer(shared, &key, deadline_ms);
                shared.counters.bump(resolution.status, resolution.cached);
                if resolution.response(id).write_to(&mut writer).is_err() {
                    break;
                }
            }
            Some(Heartbeat::Frame(_)) => {
                // Coordinator-protocol frames have no business here: a
                // typed rejection, then hang up.
                let _ = Resolution::verdict(QueryStatus::BadRequest, "unexpected frame type")
                    .response(0)
                    .write_to(&mut writer);
                break;
            }
            Some(Heartbeat::Eof) => break,
            Some(Heartbeat::Err(e)) => {
                // Malformed framing (bad length word, junk payload, torn
                // frame): reply typed if the socket still works, close
                // either way. The offending byte offset is in `e`.
                let _ = Resolution::verdict(QueryStatus::BadRequest, e.to_string())
                    .response(0)
                    .write_to(&mut writer);
                break;
            }
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// Runs the query server until `config.interrupt` latches, then drains and
/// commits the store. Returns the summary (the caller maps it to exit
/// codes); `Err` only for startup failures (store open, bind).
///
/// Prints exactly one line to stdout before serving:
/// `serve: listening on <addr>` — machine-readable so tests and CI can
/// bind port 0 and discover the real address.
pub fn run(config: ServeConfig) -> Result<ServeSummary, String> {
    ABANDON.store(false, Ordering::SeqCst);
    let store = ProfileStore::open(&config.store_path, &config.scale, &config.scale_label)
        .map_err(|e| {
            format!(
                "cannot open profile store {}: {e}",
                config.store_path.display()
            )
        })?;
    let preloaded = store.len();
    let listener = TcpListener::bind(&config.listen)
        .map_err(|e| format!("cannot bind {}: {e}", config.listen))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("cannot read bound address: {e}"))?;
    println!("serve: listening on {local}");
    let _ = std::io::stdout().flush();
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot set listener non-blocking: {e}"))?;
    eprintln!(
        "serve: profile store {} ({preloaded} point(s) preloaded)",
        config.store_path.display()
    );

    let shared = Arc::new(Shared {
        scale: config.scale,
        store,
        admission: Admission::new(config.queue_depth),
        counters: Counters::new(),
        draining: AtomicBool::new(false),
        in_flight: AtomicUsize::new(0),
        workers_alive: AtomicUsize::new(0),
        sim_spent: AtomicU64::new(0),
        sim_budget: config.sim_budget,
        max_wait: config.max_wait,
        idle_timeout: config.idle_timeout,
    });
    let mut workers = Vec::new();
    for i in 0..config.workers.max(1) {
        let shared = Arc::clone(&shared);
        shared.workers_alive.fetch_add(1, Ordering::SeqCst);
        workers.push(
            std::thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .map_err(|e| format!("cannot spawn worker: {e}"))?,
        );
    }
    let active_conns = Arc::new(AtomicUsize::new(0));
    loop {
        if config.interrupt.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                pud_observe::counter("serve.accepted").incr();
                let shared = Arc::clone(&shared);
                let conns = Arc::clone(&active_conns);
                conns.fetch_add(1, Ordering::SeqCst);
                let spawned = std::thread::Builder::new()
                    .name("serve-conn".to_string())
                    .spawn(move || {
                        let _guard = CountGuard(&conns);
                        handle_connection(&shared, stream);
                    });
                if spawned.is_err() {
                    active_conns.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => {
                eprintln!("serve: accept error: {e}");
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
    drop(listener);

    // Drain: no new admissions, queued and in-flight requests answered,
    // connections closed as they go idle — all under the drain deadline.
    eprintln!(
        "serve: draining ({} connection(s), {} in flight)",
        active_conns.load(Ordering::SeqCst),
        shared.in_flight.load(Ordering::SeqCst),
    );
    shared.draining.store(true, Ordering::SeqCst);
    shared.admission.close();
    let drain_start = Instant::now();
    let mut forced = false;
    while active_conns.load(Ordering::SeqCst) > 0
        || shared.in_flight.load(Ordering::SeqCst) > 0
        || !shared.admission.is_empty()
    {
        if drain_start.elapsed() >= config.drain_deadline {
            forced = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    if forced {
        // Past the deadline: cancel in-flight simulations through their
        // tokens and give the cancellation a short grace to land.
        eprintln!("serve: drain deadline exceeded — abandoning in-flight work");
        ABANDON.store(true, Ordering::SeqCst);
        let grace = Instant::now();
        while (active_conns.load(Ordering::SeqCst) > 0
            || shared.in_flight.load(Ordering::SeqCst) > 0)
            && grace.elapsed() < Duration::from_secs(2)
        {
            std::thread::sleep(Duration::from_millis(20));
        }
    }
    for worker in workers {
        let _ = worker.join();
    }
    // The store is the shutdown's one durable artifact: barrier-commit it
    // and surface any latched write error to the caller.
    shared.store.commit();
    let write_error = shared.store.take_write_error().map(|e| e.to_string());
    let summary = ServeSummary {
        queries: shared.counters.queries.load(Ordering::SeqCst),
        cache_hits: shared.counters.cache_hits.load(Ordering::SeqCst),
        computed: shared.counters.computed.load(Ordering::SeqCst),
        shed: shared.counters.shed.load(Ordering::SeqCst),
        expired: shared.counters.expired.load(Ordering::SeqCst),
        degraded: shared.counters.degraded.load(Ordering::SeqCst),
        unavailable: shared.counters.unavailable.load(Ordering::SeqCst),
        bad_request: shared.counters.bad_request.load(Ordering::SeqCst),
        store_points: shared.store.len() as u64,
        forced_abandon: forced,
        write_error,
    };
    eprintln!(
        "serve: {} query(ies) answered ({} cache hits, {} computed, {} shed), \
         {} point(s) committed{}",
        summary.queries,
        summary.cache_hits,
        summary.computed,
        summary.shed,
        summary.store_points,
        if summary.forced_abandon {
            " — drain forced"
        } else {
            ""
        },
    );
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_key(pattern: &str) -> ProfileKey {
        ProfileKey::parse(&format!("family=SK Hynix-A-4Gb;chip=0;pattern={pattern}"))
            .expect("valid key")
    }

    #[test]
    fn keys_parse_and_canonicalize_stably() {
        let key = quick_key("rh-ds");
        assert_eq!(
            key.canonical(),
            "family=SK Hynix-A-4Gb;chip=0;pattern=rh-ds;dp=0x55;temp_cc=8000;aggon_ps=0"
        );
        // Canonical text round-trips to the same key.
        let again = ProfileKey::parse(&key.canonical()).unwrap();
        assert_eq!(again, key);
        assert_eq!(again.canonical(), key.canonical());
        // Field order and whitespace do not matter; defaults fill in.
        let shuffled = ProfileKey::parse("pattern=rh-ds; family=SK Hynix-A-4Gb ;chip=0").unwrap();
        assert_eq!(shuffled.canonical(), key.canonical());
        // SiMRA defaults to the all-zeros aggressor pattern.
        let simra = quick_key("simra-4");
        assert!(matches!(simra.dp, DpSpec::Fixed(DataPattern::ZEROS)));
    }

    #[test]
    fn malformed_keys_are_rejected_with_reasons() {
        for (text, needle) in [
            ("", "missing field family"),
            (
                "family=No Such-Z-0Gb;chip=0;pattern=rh-ds",
                "unknown module family",
            ),
            ("family=SK Hynix-A-4Gb;pattern=rh-ds", "missing field chip"),
            ("family=SK Hynix-A-4Gb;chip=0", "missing field pattern"),
            (
                "family=SK Hynix-A-4Gb;chip=0;pattern=warp",
                "unknown pattern class",
            ),
            (
                "family=SK Hynix-A-4Gb;chip=0;pattern=simra-3",
                "unknown pattern class",
            ),
            (
                "family=SK Hynix-A-4Gb;chip=0;pattern=rh-ds;dp=0x13",
                "unknown data pattern",
            ),
            (
                "family=SK Hynix-A-4Gb;chip=0;pattern=rh-ds;temp_cc=999999",
                "temp_cc",
            ),
            (
                "family=SK Hynix-A-4Gb;chip=0;pattern=rh-ds;bogus=1",
                "unknown key field",
            ),
            ("just words", "not key=value"),
        ] {
            let err = ProfileKey::parse(text).expect_err(text);
            assert!(err.contains(needle), "{text:?}: {err}");
        }
    }

    #[test]
    fn resolution_is_deterministic_and_fresh_per_call() {
        let scale = Scale::quick();
        let key = quick_key("rh-ds");
        let a = resolve_with_retry(&scale, &key);
        let b = resolve_with_retry(&scale, &key);
        assert_eq!(a.status, QueryStatus::Ok, "{}", a.detail);
        assert_eq!(a, b, "fresh chips must give byte-identical values");
        assert!(a.value.contains("hc_first="), "{}", a.value);
    }

    #[test]
    fn simra_on_a_non_simra_family_is_a_bad_request() {
        let scale = Scale::quick();
        let key = ProfileKey::parse("family=Samsung-C-4Gb;chip=0;pattern=simra-4")
            .expect("parses; capability is a resolve-time question");
        let r = resolve_with_retry(&scale, &key);
        assert_eq!(r.status, QueryStatus::BadRequest);
        assert!(r.detail.contains("multi-row activation"), "{}", r.detail);
    }

    #[test]
    fn transient_chip_faults_retry_to_the_fault_free_value() {
        let clean = Scale::quick();
        let key = quick_key("comra-ds");
        let reference = resolve_with_retry(&clean, &key);
        assert_eq!(reference.status, QueryStatus::Ok);
        // Seed 103 is the curated CI fault seed; crank transients to full
        // probability so this chip certainly draws one.
        let mut faulty = Scale::quick();
        faulty.fleet.fault = Some(pud_bender::fault::FaultConfig {
            seed: 103,
            transient_permille: 1000,
            permanent_permille: 0,
            worker_abort_permille: 0,
            worker_hang_permille: 0,
        });
        let retried = resolve_with_retry(&faulty, &key);
        assert_eq!(retried.status, QueryStatus::Ok, "{}", retried.detail);
        assert!(retried.retries > 0, "full transient probability must retry");
        assert_eq!(retried.value, reference.value, "retried value identical");
    }

    #[test]
    fn expired_deadline_resolves_as_expired_not_a_hang() {
        let scale = Scale::quick();
        let key = quick_key("rh-ds");
        let token = CancelToken::new().with_deadline(Duration::from_secs(0));
        let _guard = supervisor::install_local(token);
        let r = resolve_with_retry(&scale, &key);
        assert_eq!(r.status, QueryStatus::Expired, "{:?}", r);
    }

    #[test]
    fn profile_store_round_trips_across_reopen() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("pud-serve-store-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let scale = Scale::quick();
        {
            let store = ProfileStore::open(&path, &scale, "quick").expect("open fresh");
            assert!(store.is_empty());
            store.insert("k1", "victim=1 hc_first=2");
            store.insert("k2", "victim=3 hc_first=none");
            assert_eq!(store.hit("k1").as_deref(), Some("victim=1 hc_first=2"));
            store.commit();
            assert!(store.take_write_error().is_none());
        }
        {
            let store = ProfileStore::open(&path, &scale, "quick").expect("reopen");
            assert_eq!(store.len(), 2);
            assert_eq!(store.hit("k2").as_deref(), Some("victim=3 hc_first=none"));
            assert_eq!(store.hit("k3"), None);
        }
        // A differently-shaped fleet is rejected, not silently mixed.
        let mut other = Scale::quick();
        other.fleet.seed ^= 1;
        assert!(ProfileStore::open(&path, &other, "quick").is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn admission_queue_bounds_sheds_and_closes() {
        let adm = Admission::new(2);
        let job = |n: u64| {
            let (reply, _rx) = mpsc::channel();
            Box::new(Job {
                key: quick_key("rh-ds"),
                canonical: format!("k{n}"),
                deadline: None,
                reply,
            })
        };
        assert!(adm.submit(job(1)).is_ok());
        assert!(adm.submit(job(2)).is_ok());
        assert!(adm.submit(job(3)).is_err(), "capacity 2 sheds the third");
        assert!(matches!(adm.pop(Duration::from_millis(10)), Popped::Job(_)));
        assert!(adm.submit(job(4)).is_ok(), "popped slot frees capacity");
        adm.close();
        assert!(adm.submit(job(5)).is_err(), "closed queue rejects");
        // Queued jobs still drain after close; then Closed.
        assert!(matches!(adm.pop(Duration::from_millis(10)), Popped::Job(_)));
        assert!(matches!(adm.pop(Duration::from_millis(10)), Popped::Job(_)));
        assert!(matches!(adm.pop(Duration::from_millis(10)), Popped::Closed));
    }
}
