//! In-DRAM Target Row Refresh (TRR) models and bypass patterns.
//!
//! Reproduces §7 of the paper: a sampling-based TRR mechanism (as uncovered
//! by U-TRR on the tested SK Hynix module), a U-TRR-style discovery
//! procedure, and the N-sided / dummy-row access patterns used to measure
//! how RowHammer, CoMRA, and SiMRA interact with TRR.
//!
//! The headline result this crate reproduces (Fig. 24): CoMRA and SiMRA
//! bypass TRR — SiMRA bitflips drop only ~15 % under TRR while RowHammer
//! bitflips drop by ~99.9 %, because (1) a SiMRA operation exposes only two
//! row addresses on the bus while activating up to 32 rows, and (2) SiMRA's
//! HC_first (as low as 26) is reached well within one refresh interval.
//!
//! # Example
//!
//! ```
//! use pud_bender::{Executor, TestEnv};
//! use pud_dram::{profiles, BankId, ChipGeometry, RowAddr};
//! use pud_trr::{SamplingTrr, SamplingTrrConfig, uncover};
//!
//! let profile = &profiles::TESTED_MODULES[1];
//! let mut exec = Executor::new(profile, ChipGeometry::scaled_for_tests(), 0, 1);
//! exec.set_env(TestEnv::with_refresh());
//! exec.set_observer(Box::new(SamplingTrr::new(
//!     SamplingTrrConfig::default(),
//!     profile.mapping(),
//!     7,
//! )));
//! let aggressor = exec.chip().to_logical(RowAddr(40));
//! let discovery = uncover(&mut exec, BankId(0), aggressor, 18);
//! assert!(discovery.detects_aggressors);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod patterns;
mod sampling;
mod utrr;

pub use sampling::{SamplingTrr, SamplingTrrConfig};
pub use utrr::{uncover, TrrDiscovery};
