//! A minimal hand-rolled JSON writer and reader.
//!
//! The workspace is dependency-free by design, so trace events, metric
//! snapshots, run metadata, and sweep checkpoints are serialized through
//! this module instead of an external serializer. Only what the
//! observability layer needs is implemented: objects, arrays, strings with
//! full escaping, integers, floats (non-finite values become `null`), and
//! booleans — plus a [`JsonValue`] parser for reading checkpoint lines
//! back. Parsed numbers keep their source literal ([`JsonValue::Num`]), so
//! a `u64` or shortest-round-trip `f64` written by this module re-renders
//! byte-identically.

use std::fmt::Write as _;

/// Escapes `s` for inclusion inside a JSON string literal (no surrounding
/// quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` as a JSON value (`null` for NaN/infinity, which JSON
/// cannot represent).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Incremental writer for one JSON object.
#[derive(Debug, Clone, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> JsonObject {
        JsonObject::default()
    }

    fn sep(&mut self, key: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        let _ = write!(self.buf, "\"{}\":", escape(key));
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> JsonObject {
        self.sep(key);
        let _ = write!(self.buf, "\"{}\"", escape(value));
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> JsonObject {
        self.sep(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a float field (`null` when non-finite).
    pub fn f64(mut self, key: &str, value: f64) -> JsonObject {
        self.sep(key);
        self.buf.push_str(&number(value));
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> JsonObject {
        self.sep(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds a pre-rendered JSON value verbatim.
    pub fn raw(mut self, key: &str, value: &str) -> JsonObject {
        self.sep(key);
        self.buf.push_str(value);
        self
    }

    /// Finishes the object.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Incremental writer for one JSON array.
#[derive(Debug, Clone, Default)]
pub struct JsonArray {
    buf: String,
}

impl JsonArray {
    /// Starts an empty array.
    pub fn new() -> JsonArray {
        JsonArray::default()
    }

    fn sep(&mut self) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
    }

    /// Appends a pre-rendered JSON value verbatim.
    pub fn raw(mut self, value: &str) -> JsonArray {
        self.sep();
        self.buf.push_str(value);
        self
    }

    /// Appends a string element.
    pub fn str(mut self, value: &str) -> JsonArray {
        self.sep();
        let _ = write!(self.buf, "\"{}\"", escape(value));
        self
    }

    /// Appends an unsigned integer element.
    pub fn u64(mut self, value: u64) -> JsonArray {
        self.sep();
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Finishes the array.
    pub fn finish(self) -> String {
        format!("[{}]", self.buf)
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its source literal so integers round-trip exactly.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source key order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses one complete JSON document; trailing garbage is an error.
    pub fn parse(input: &str) -> Result<JsonValue, String> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `u64`, if this is an integral number literal.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(lit) => lit.parse().ok(),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(lit) => lit.parse().ok(),
            _ => None,
        }
    }

    /// The raw number literal, exactly as it appeared in the source.
    pub fn num_literal(&self) -> Option<&str> {
        match self {
            JsonValue::Num(lit) => Some(lit),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders back to compact JSON. Output produced by this module's
    /// writers round-trips byte-identically (numbers keep their source
    /// literal, objects keep their field order).
    pub fn render(&self) -> String {
        match self {
            JsonValue::Null => "null".to_string(),
            JsonValue::Bool(b) => b.to_string(),
            JsonValue::Num(lit) => lit.clone(),
            JsonValue::Str(s) => format!("\"{}\"", escape(s)),
            JsonValue::Arr(items) => {
                let mut arr = JsonArray::new();
                for item in items {
                    arr = arr.raw(&item.render());
                }
                arr.finish()
            }
            JsonValue::Obj(fields) => {
                let mut obj = JsonObject::new();
                for (key, value) in fields {
                    obj = obj.raw(key, &value.render());
                }
                obj.finish()
            }
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b' ' | b'\t' | b'\n' | b'\r') = bytes.get(*pos) {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| JsonValue::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| JsonValue::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| JsonValue::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(JsonValue::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                fields.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            if bytes.get(*pos) == Some(&b'-') {
                *pos += 1;
            }
            while let Some(c) = bytes.get(*pos) {
                if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
                    *pos += 1;
                } else {
                    break;
                }
            }
            let lit = std::str::from_utf8(&bytes[start..*pos])
                .map_err(|_| "invalid utf-8 in number".to_string())?;
            if lit.parse::<f64>().is_err() {
                return Err(format!("invalid number `{lit}`"));
            }
            Ok(JsonValue::Num(lit.to_string()))
        }
        Some(c) => Err(format!(
            "unexpected byte `{}` at {pos}",
            *c as char,
            pos = *pos
        )),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, "\"")?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through untouched).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "invalid utf-8 in string".to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_control_and_quote_chars() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("back\\slash"), "back\\\\slash");
        assert_eq!(escape("line\nfeed\ttab\rret"), "line\\nfeed\\ttab\\rret");
        assert_eq!(escape("\u{08}\u{0C}"), "\\b\\f");
        assert_eq!(escape("\u{01}"), "\\u0001");
        assert_eq!(escape("unicode: µ§"), "unicode: µ§");
    }

    #[test]
    fn object_builder_renders_all_field_kinds() {
        let s = JsonObject::new()
            .str("name", "act \"x\"")
            .u64("count", 42)
            .f64("gap_ns", 7.5)
            .bool("partial", false)
            .raw("nested", "[1,2]")
            .finish();
        assert_eq!(
            s,
            "{\"name\":\"act \\\"x\\\"\",\"count\":42,\"gap_ns\":7.5,\
             \"partial\":false,\"nested\":[1,2]}"
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(
            JsonObject::new().f64("x", f64::NAN).finish(),
            "{\"x\":null}"
        );
    }

    #[test]
    fn array_builder() {
        let a = JsonArray::new().u64(1).str("two").raw("{\"k\":3}").finish();
        assert_eq!(a, "[1,\"two\",{\"k\":3}]");
        assert_eq!(JsonArray::new().finish(), "[]");
        assert_eq!(JsonObject::new().finish(), "{}");
    }

    #[test]
    fn parser_round_trips_writer_output() {
        let line = JsonObject::new()
            .str("name", "act \"x\"\n")
            .u64("count", u64::MAX)
            .f64("gap_ns", 7.5)
            .bool("partial", false)
            .raw("nested", "[1,2,null]")
            .finish();
        let v = JsonValue::parse(&line).expect("writer output parses");
        assert_eq!(
            v.get("name").and_then(JsonValue::as_str),
            Some("act \"x\"\n")
        );
        assert_eq!(v.get("count").and_then(JsonValue::as_u64), Some(u64::MAX));
        assert_eq!(v.get("gap_ns").and_then(JsonValue::as_f64), Some(7.5));
        assert_eq!(v.get("partial"), Some(&JsonValue::Bool(false)));
        let nested = v.get("nested").and_then(JsonValue::as_arr).expect("array");
        assert_eq!(nested.len(), 3);
        assert_eq!(nested[2], JsonValue::Null);
    }

    #[test]
    fn number_literals_are_preserved_verbatim() {
        let v = JsonValue::parse("{\"a\":18446744073709551615,\"b\":0.30000000000000004}")
            .expect("parses");
        assert_eq!(
            v.get("a").and_then(JsonValue::num_literal),
            Some("18446744073709551615")
        );
        assert_eq!(
            v.get("b").and_then(JsonValue::num_literal),
            Some("0.30000000000000004")
        );
        // u64::MAX does not fit f64 but still parses as an exact u64.
        assert_eq!(v.get("a").and_then(JsonValue::as_u64), Some(u64::MAX));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(JsonValue::parse("").is_err());
        assert!(JsonValue::parse("{\"a\":1").is_err());
        assert!(JsonValue::parse("{\"a\" 1}").is_err());
        assert!(JsonValue::parse("[1,2,]").is_err());
        assert!(JsonValue::parse("\"open").is_err());
        assert!(JsonValue::parse("{} trailing").is_err());
        assert!(JsonValue::parse("nul").is_err());
        assert!(JsonValue::parse("1.2.3").is_err());
    }

    #[test]
    fn render_round_trips_writer_output_byte_identically() {
        for src in [
            "{\"a\":1,\"b\":\"x\\ny\",\"c\":[1,2,null],\"d\":{\"e\":0.5,\"f\":true}}",
            "{}",
            "[]",
            "{\"big\":18446744073709551615,\"neg\":-3.25e-7}",
        ] {
            let v = JsonValue::parse(src).expect("parses");
            assert_eq!(v.render(), src);
        }
    }

    #[test]
    fn parser_handles_escapes_and_unicode() {
        let v = JsonValue::parse("\"a\\u0041\\n\\t µ\"").expect("parses");
        assert_eq!(v.as_str(), Some("aA\n\t µ"));
        let v = JsonValue::parse(" [ true , false , null ] ").expect("parses");
        assert_eq!(
            v,
            JsonValue::Arr(vec![
                JsonValue::Bool(true),
                JsonValue::Bool(false),
                JsonValue::Null
            ])
        );
    }
}
