//! Fault-tolerant campaign behavior end to end: the curated fault seed
//! quarantines exactly one family and retries two, checkpointed runs of
//! every driver resume byte-identically after a mid-fleet kill, an
//! expired deadline flushes a resumable checkpoint alongside the partial
//! report, and mismatched checkpoints are rejected.

use std::path::PathBuf;
use std::sync::Mutex;

use pudhammer_suite::bender::fault::FaultConfig;
use pudhammer_suite::hammer::experiments::{combined, comra, simra, table2, trr_eval, Scale};
use pudhammer_suite::hammer::fleet::checkpoint::{CheckpointHeader, CheckpointStore};
use pudhammer_suite::hammer::fleet::supervisor::{self, CancelReason, CancelToken};

/// Tests in this binary read the process-global metrics registry, so they
/// must not overlap.
static GLOBAL_STATE: Mutex<()> = Mutex::new(());

fn tiny_scale() -> Scale {
    let mut s = Scale::quick();
    s.fleet.victims_per_subarray = 1;
    s
}

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("pud-ft-{name}-{}", std::process::id()));
    p
}

#[test]
fn curated_seed_quarantines_one_family_and_recovers_two() {
    let _guard = GLOBAL_STATE.lock().unwrap_or_else(|e| e.into_inner());
    let mut scale = tiny_scale();
    scale.fleet.fault = Some(FaultConfig::from_seed(103));
    let snap_before = pudhammer_suite::observe::snapshot();
    let t = table2::table2(&scale);
    let snap_after = pudhammer_suite::observe::snapshot();

    // The table still covers all 14 families: the dead chip's row is a
    // placeholder, not a hole.
    assert_eq!(t.rows.len(), 14);
    let dead: Vec<&table2::Table2Row> = t.rows.iter().filter(|r| r.quarantined.is_some()).collect();
    assert_eq!(dead.len(), 1, "exactly one family quarantined");
    assert_eq!(dead[0].profile.key(), "Micron-E-16Gb");
    assert!(dead[0].rowhammer.is_none() && dead[0].comra.is_none());
    assert!(
        dead[0]
            .quarantined
            .as_deref()
            .unwrap()
            .contains("chip_dead"),
        "{:?}",
        dead[0].quarantined
    );
    // Transient chips recovered: their rows carry real measurements.
    for row in &t.rows {
        if row.quarantined.is_none() {
            assert!(
                row.rowhammer.is_some(),
                "{} must recover",
                row.profile.key()
            );
        }
    }

    // Sweep accounting: 1 + 2 transient faults retried, one chip
    // quarantined — and the same numbers land in the global metrics.
    assert_eq!(t.sweep.retries(), 3);
    assert_eq!(t.sweep.quarantined(), 1);
    let delta =
        |name: &str| snap_after.counter(name).unwrap_or(0) - snap_before.counter(name).unwrap_or(0);
    assert_eq!(delta("sweep.retries"), 3);
    assert_eq!(delta("sweep.quarantined"), 1);
    let injected = |snap: &pudhammer_suite::observe::Snapshot| -> u64 {
        snap.counters
            .iter()
            .filter(|(name, _)| name.starts_with("faults.injected."))
            .map(|(_, v)| v)
            .sum()
    };
    assert!(
        injected(&snap_after) - injected(&snap_before) >= 3,
        "three faulty chips must inject at least three faults"
    );

    // The rendered table flags the dead family and carries the footer.
    let rendered = t.to_string();
    assert!(rendered.contains("QUARANTINED"), "{rendered}");
    assert!(rendered.contains("Micron-E-16Gb#0"), "{rendered}");
    assert!(
        rendered.contains("3 transient failure(s) retried"),
        "{rendered}"
    );
}

#[test]
fn checkpoint_resume_is_byte_identical_after_a_mid_fleet_kill() {
    let _guard = GLOBAL_STATE.lock().unwrap_or_else(|e| e.into_inner());
    let scale = tiny_scale();
    let header = || CheckpointHeader {
        target: "table2".to_string(),
        scale: "quick".to_string(),
        fingerprint: scale.fleet.fingerprint(),
        fault_seed: None,
        shard: None,
    };
    let path = temp_path("resume");
    let _ = std::fs::remove_file(&path);

    // Uninterrupted checkpointed run: the reference output.
    let store = CheckpointStore::open(&path, header()).expect("create");
    let reference = table2::table2_ckpt(&scale, Some(&store)).to_string();
    drop(store);

    // Simulate a kill mid-fleet: keep the header plus the first five
    // completed rows and half of the sixth (an interrupted write).
    let content = std::fs::read_to_string(&path).expect("read checkpoint");
    let lines: Vec<&str> = content.split_inclusive('\n').collect();
    assert_eq!(lines.len(), 15, "header + one row per family");
    let mut truncated: String = lines[..6].concat();
    truncated.push_str(&lines[6][..lines[6].len() / 2]);
    std::fs::write(&path, &truncated).expect("truncate");

    // Resume: recovered rows are decoded, the rest re-measured; the
    // rendered table must match the uninterrupted run byte for byte.
    let store = CheckpointStore::open(&path, header()).expect("reopen");
    assert_eq!(store.recovered(), 5, "partial sixth row dropped");
    let resumed = table2::table2_ckpt(&scale, Some(&store)).to_string();
    assert_eq!(reference, resumed);
    drop(store);

    // And a third run over the now-complete checkpoint re-measures
    // nothing, still rendering the same bytes.
    let store = CheckpointStore::open(&path, header()).expect("reopen full");
    assert_eq!(store.recovered(), 14);
    let replayed = table2::table2_ckpt(&scale, Some(&store)).to_string();
    assert_eq!(reference, replayed);
    let _ = std::fs::remove_file(&path);
}

/// The generic kill-and-resume check behind the per-driver tests below:
/// run the driver once checkpointed (the reference), simulate a mid-run
/// kill by keeping the header plus roughly half the completed records
/// (with a torn trailing write), then resume against the truncated file
/// and require the rendered report to match byte for byte.
fn kill_and_resume_case(
    name: &str,
    scale: &Scale,
    target: &str,
    render: impl Fn(&Scale, Option<&CheckpointStore>) -> String,
) {
    let header = || CheckpointHeader {
        target: target.to_string(),
        scale: "quick".to_string(),
        fingerprint: scale.fleet.fingerprint(),
        fault_seed: None,
        shard: None,
    };
    let path = temp_path(name);
    let _ = std::fs::remove_file(&path);

    let store = CheckpointStore::open(&path, header()).expect("create");
    let reference = render(scale, Some(&store));
    drop(store);

    let content = std::fs::read_to_string(&path).expect("read checkpoint");
    let lines: Vec<&str> = content.split_inclusive('\n').collect();
    assert!(lines.len() > 2, "{name}: checkpoint must hold several rows");
    let keep = 1 + (lines.len() - 1) / 2;
    let mut truncated: String = lines[..keep].concat();
    truncated.push_str(&lines[keep][..lines[keep].len() / 2]);
    std::fs::write(&path, &truncated).expect("truncate");

    let store = CheckpointStore::open(&path, header()).expect("reopen");
    assert_eq!(
        store.recovered(),
        keep - 1,
        "{name}: the torn trailing row must be dropped"
    );
    let resumed = render(scale, Some(&store));
    assert_eq!(reference, resumed, "{name}: resume must be byte-identical");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn fig4_resumes_byte_identically_and_matches_the_uncheckpointed_run() {
    let _guard = GLOBAL_STATE.lock().unwrap_or_else(|e| e.into_inner());
    let scale = tiny_scale();
    // The checkpoint codec must be invisible: a checkpointed run renders
    // the same bytes as a checkpoint-free one (bit-exact f64 round-trip).
    let plain = comra::fig4(&scale).to_string();
    kill_and_resume_case("fig4", &scale, "fig4", |s, c| {
        let rendered = comra::fig4_ckpt(s, c).to_string();
        assert_eq!(plain, rendered, "checkpointing must not change output");
        rendered
    });
}

#[test]
fn fig16_resumes_byte_identically() {
    let _guard = GLOBAL_STATE.lock().unwrap_or_else(|e| e.into_inner());
    let scale = tiny_scale();
    kill_and_resume_case("fig16", &scale, "fig16", |s, c| {
        simra::fig16_ckpt(s, c).to_string()
    });
}

#[test]
fn fig21_resumes_byte_identically() {
    let _guard = GLOBAL_STATE.lock().unwrap_or_else(|e| e.into_inner());
    let scale = tiny_scale();
    kill_and_resume_case("fig21", &scale, "fig21", |s, c| {
        combined::fig21_ckpt(s, c).to_string()
    });
}

#[test]
fn fig24_resumes_byte_identically() {
    let _guard = GLOBAL_STATE.lock().unwrap_or_else(|e| e.into_inner());
    let mut scale = tiny_scale();
    scale.trr_hammers = 60_000;
    kill_and_resume_case("fig24", &scale, "fig24", |s, c| {
        trr_eval::fig24_ckpt(s, c).to_string()
    });
}

#[test]
fn deadline_expiry_renders_a_partial_report_and_resumes_to_completion() {
    let _guard = GLOBAL_STATE.lock().unwrap_or_else(|e| e.into_inner());
    let mut scale = tiny_scale();
    // One worker makes the unit budget expire at a deterministic point.
    scale.threads = 1;
    let header = || CheckpointHeader {
        target: "fig4".to_string(),
        scale: "quick".to_string(),
        fingerprint: scale.fleet.fingerprint(),
        fault_seed: None,
        shard: None,
    };
    let path = temp_path("deadline");
    let _ = std::fs::remove_file(&path);
    let reference = comra::fig4(&scale).to_string();

    // Budgeted run: the virtual-time deadline expires after two chips.
    let store = CheckpointStore::open(&path, header()).expect("create");
    let token = CancelToken::new().with_unit_budget(2);
    let supervisor_guard = supervisor::install(token.clone());
    let partial = comra::fig4_ckpt(&scale, Some(&store)).to_string();
    drop(supervisor_guard);
    assert_eq!(token.latched(), Some(CancelReason::DeadlineExpired));
    assert_eq!(token.units_done(), 2);
    // The partial report says what was cut and why instead of panicking.
    assert!(partial.contains("CANCELLED"), "{partial}");
    assert!(partial.contains("deadline expired"), "{partial}");
    assert!(partial.contains("cancelled before completion"), "{partial}");
    assert!(store.take_write_error().is_none());
    drop(store);

    // Both completed chips were flushed before the campaign wound down.
    let store = CheckpointStore::open(&path, header()).expect("reopen");
    assert_eq!(store.recovered(), 2);
    // Resuming without a budget completes the campaign byte-identically
    // to an uninterrupted, checkpoint-free run.
    let resumed = comra::fig4_ckpt(&scale, Some(&store)).to_string();
    assert_eq!(reference, resumed);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn mismatched_checkpoint_is_rejected_as_a_different_campaign() {
    let scale = tiny_scale();
    let path = temp_path("mismatch");
    let _ = std::fs::remove_file(&path);
    let header = CheckpointHeader {
        target: "table2".to_string(),
        scale: "quick".to_string(),
        fingerprint: scale.fleet.fingerprint(),
        fault_seed: None,
        shard: None,
    };
    CheckpointStore::open(&path, header.clone()).expect("create");
    let mut other = header;
    other.fault_seed = Some(103);
    other.fingerprint ^= 0xDEAD;
    let err = CheckpointStore::open(&path, other).expect_err("must reject");
    assert!(err.to_string().contains("different campaign"), "{err}");
    let _ = std::fs::remove_file(&path);
}
