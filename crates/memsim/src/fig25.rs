//! Fig. 25: performance impact of the PRAC-PO implementations on
//! five-core multiprogrammed workloads.
//!
//! For each PuD operation period (125 ns – 16 µs), every mix is executed
//! under no mitigation (baseline), PRAC-PO-Naive, and PRAC-PO with weighted
//! counting; the plotted metric is weighted speedup normalized to the
//! baseline (higher is better).

use std::fmt;

use crate::prac::Mitigation;
use crate::system::{run_mix, RunStats};
use crate::timing::{DramTiming, SystemConfig};
use crate::workload::{build_mixes, Mix, PUD_PERIODS_NS};

/// One point of the Fig. 25 series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig25Point {
    /// PuD operation period in nanoseconds.
    pub period_ns: u64,
    /// Normalized performance under PRAC-PO-Naive.
    pub naive: f64,
    /// Normalized performance under PRAC-PO with weighted counting.
    pub weighted: f64,
}

/// The Fig. 25 result.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig25 {
    /// One point per PuD period (ascending).
    pub points: Vec<Fig25Point>,
    /// Mixes evaluated per point.
    pub mixes: u32,
}

impl Fig25 {
    /// Average performance overhead (1 − normalized performance) across all
    /// periods, for the weighted-counting configuration.
    pub fn avg_overhead_weighted(&self) -> f64 {
        1.0 - self.points.iter().map(|p| p.weighted).sum::<f64>() / self.points.len() as f64
    }

    /// Average overhead of the naive configuration.
    pub fn avg_overhead_naive(&self) -> f64 {
        1.0 - self.points.iter().map(|p| p.naive).sum::<f64>() / self.points.len() as f64
    }

    /// Maximum overhead of the weighted configuration.
    pub fn max_overhead_weighted(&self) -> f64 {
        self.points
            .iter()
            .map(|p| 1.0 - p.weighted)
            .fold(0.0, f64::max)
    }

    /// The point at a given period.
    pub fn at_period(&self, period_ns: u64) -> Option<&Fig25Point> {
        self.points.iter().find(|p| p.period_ns == period_ns)
    }
}

/// Configuration of the Fig. 25 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig25Config {
    /// Number of mixes (the paper uses 60).
    pub mixes: u32,
    /// Instructions retired per benchmark core (the paper simulates 100 M;
    /// the default here is scaled down for tractability).
    pub instr_budget: u64,
    /// Simulation seed.
    pub seed: u64,
}

impl Fig25Config {
    /// Quick configuration for tests and benches.
    pub fn quick() -> Fig25Config {
        Fig25Config {
            mixes: 3,
            instr_budget: 120_000,
            seed: 0xF1625,
        }
    }

    /// Full-scale configuration (60 mixes).
    pub fn full() -> Fig25Config {
        Fig25Config {
            mixes: 60,
            instr_budget: 1_000_000,
            seed: 0xF1625,
        }
    }
}

/// Runs the Fig. 25 sweep.
pub fn fig25(config: &Fig25Config) -> Fig25 {
    let _span = pud_observe::span("experiment.fig25");
    let cfg = SystemConfig::default();
    let timing = DramTiming::default();
    let mixes = build_mixes(config.mixes, config.seed);
    let mut points = Vec::new();
    for &period in &PUD_PERIODS_NS {
        let mut naive_sum = 0.0;
        let mut weighted_sum = 0.0;
        for mix in &mixes {
            let base = run_mix(
                &cfg,
                &timing,
                mix,
                Some(period),
                Mitigation::None,
                config.instr_budget,
                config.seed,
            );
            let naive = run_mix(
                &cfg,
                &timing,
                mix,
                Some(period),
                Mitigation::PracPoNaive,
                config.instr_budget,
                config.seed,
            );
            let weighted = run_mix(
                &cfg,
                &timing,
                mix,
                Some(period),
                Mitigation::PracPoWeighted,
                config.instr_budget,
                config.seed,
            );
            naive_sum += normalized(&naive, &base);
            weighted_sum += normalized(&weighted, &base);
        }
        points.push(Fig25Point {
            period_ns: period,
            naive: naive_sum / mixes.len() as f64,
            weighted: weighted_sum / mixes.len() as f64,
        });
    }
    Fig25 {
        points,
        mixes: config.mixes,
    }
}

/// Weighted speedup of `run` normalized to `base` (per-core IPC ratios,
/// averaged — the multiprogrammed metric of [242, 243] with the shared
/// baseline as reference).
pub fn normalized(run: &RunStats, base: &RunStats) -> f64 {
    let n = run.core_ipc.len().min(base.core_ipc.len());
    (0..n)
        .map(|i| run.core_ipc[i] / base.core_ipc[i].max(1e-12))
        .sum::<f64>()
        / n as f64
}

/// Runs a single mix at one period under one mitigation (building block for
/// ablations).
pub fn run_single(
    mix: &Mix,
    period_ns: u64,
    mitigation: Mitigation,
    instr_budget: u64,
    seed: u64,
) -> RunStats {
    run_mix(
        &SystemConfig::default(),
        &DramTiming::default(),
        mix,
        Some(period_ns),
        mitigation,
        instr_budget,
        seed,
    )
}

impl fmt::Display for Fig25 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "== Fig. 25 — normalized performance vs PuD period ({} mixes) ==",
            self.mixes
        )?;
        writeln!(
            f,
            "| {:>9} | {:>14} | {:>17} |",
            "Period", "PRAC-PO-Naive", "PRAC-PO-Weighted"
        )?;
        writeln!(f, "{}", "-".repeat(52))?;
        for p in &self.points {
            writeln!(
                f,
                "| {:>7}ns | {:>14.3} | {:>17.3} |",
                p.period_ns, p.naive, p.weighted
            )?;
        }
        writeln!(
            f,
            "avg overhead: weighted {:.1}% (paper 48.26%), naive {:.1}%; max weighted {:.1}% (paper 98.83%)",
            self.avg_overhead_weighted() * 100.0,
            self.avg_overhead_naive() * 100.0,
            self.max_overhead_weighted() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig25_shape_matches_the_paper() {
        let mut cfg = Fig25Config::quick();
        cfg.mixes = 2;
        cfg.instr_budget = 15_000;
        let r = fig25(&cfg);
        assert_eq!(r.points.len(), PUD_PERIODS_NS.len());
        for p in &r.points {
            // Weighted counting outperforms naive at every intensity (a
            // small per-point tolerance absorbs scheduling noise at this
            // tiny test scale).
            assert!(
                p.weighted >= p.naive - 0.03,
                "period {}: weighted {} vs naive {}",
                p.period_ns,
                p.weighted,
                p.naive
            );
            assert!(p.weighted <= 1.02 && p.naive <= 1.02);
        }
        // On average the ordering is strict.
        assert!(
            r.avg_overhead_weighted() <= r.avg_overhead_naive(),
            "weighted {} vs naive {}",
            r.avg_overhead_weighted(),
            r.avg_overhead_naive()
        );
        // Overhead shrinks as the PuD period grows (lower intensity).
        let first = r.points.first().unwrap();
        let last = r.points.last().unwrap();
        assert!(last.weighted >= first.weighted);
        // Mitigation costs something at high intensity.
        assert!(first.naive < 0.97, "naive at 125ns: {}", first.naive);
    }
}
