//! Experiment environment: the knobs of the paper's Fig. 2 setup.

use pud_dram::Celsius;

/// Environment configuration for a test run.
///
/// Mirrors the measures the paper takes to eliminate interference (§3.1):
/// refresh is disabled during §4–§6 characterization (so no on-die TRR can
/// interfere and the circuit-level behaviour is visible) and the chip
/// temperature is held by heater pads at a target level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestEnv {
    /// Chip temperature maintained by the temperature controller.
    pub temperature: Celsius,
    /// Whether periodic refresh (and with it any TRR) is honoured.
    pub refresh_enabled: bool,
    /// Enforce the paper's §3.1 methodology: with refresh disabled, reject
    /// test programs whose duration exceeds the refresh window, where data
    /// retention failures would contaminate read-disturbance results.
    pub enforce_refresh_window: bool,
}

impl TestEnv {
    /// The paper's default characterization environment: 80 °C, refresh
    /// disabled.
    pub fn characterization() -> TestEnv {
        TestEnv {
            temperature: Celsius::DEFAULT_TEST,
            refresh_enabled: false,
            enforce_refresh_window: false,
        }
    }

    /// The characterization environment with the refresh-window bound
    /// enforced (§3.1: "we strictly bound the execution time of test
    /// programs within the refresh window").
    pub fn characterization_strict() -> TestEnv {
        TestEnv {
            enforce_refresh_window: true,
            ..TestEnv::characterization()
        }
    }

    /// A system-like environment with refresh enabled (used by the §7 TRR
    /// experiments).
    pub fn with_refresh() -> TestEnv {
        TestEnv {
            temperature: Celsius::DEFAULT_TEST,
            refresh_enabled: true,
            enforce_refresh_window: false,
        }
    }

    /// Returns a copy at a different temperature.
    pub fn at_temperature(mut self, t: Celsius) -> TestEnv {
        self.temperature = t;
        self
    }
}

impl Default for TestEnv {
    fn default() -> TestEnv {
        TestEnv::characterization()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_methodology() {
        let env = TestEnv::characterization();
        assert_eq!(env.temperature, Celsius(80.0));
        assert!(!env.refresh_enabled);
        assert!(!env.enforce_refresh_window);
        assert!(TestEnv::with_refresh().refresh_enabled);
        assert!(TestEnv::characterization_strict().enforce_refresh_window);
    }

    #[test]
    fn at_temperature_overrides() {
        let env = TestEnv::characterization().at_temperature(Celsius(50.0));
        assert_eq!(env.temperature, Celsius(50.0));
        assert!(!env.refresh_enabled);
    }
}
