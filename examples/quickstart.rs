//! Quickstart: measure how much CoMRA and SiMRA lower a DRAM row's
//! HC_first compared to double-sided RowHammer.
//!
//! Run with: `cargo run --release --example quickstart`

use pudhammer_suite::dram::{BankId, DataPattern};
use pudhammer_suite::hammer::fleet::{Fleet, FleetConfig};
use pudhammer_suite::hammer::hcfirst::{measure_hc_first, HcSearch};
use pudhammer_suite::hammer::patterns::{
    comra_ds_for, rowhammer_ds_for, simra_ds_kernels, simra_victims,
};

fn main() {
    // Build the simulated fleet and pick the SK Hynix 8 Gb A-die chip —
    // the module family the paper's §7/§8 analyses focus on.
    let mut fleet = Fleet::build(FleetConfig::quick());
    let chip = fleet
        .chips
        .iter_mut()
        .find(|c| c.profile.module_id == "HMA81GU7AFR8N-UH")
        .expect("the Table 2 fleet contains the 8Gb A-die");
    println!(
        "chip under test: {} ({})",
        chip.profile.module_id,
        chip.profile.key()
    );

    let bank: BankId = chip.bank();
    let search = HcSearch::default();
    let dp = DataPattern::CHECKER_55;

    // Find a victim that a SiMRA-4 group sandwiches, so all three
    // techniques can target the same row.
    let sa = chip.tested_subarrays()[1];
    let simra_kernel = simra_ds_kernels(chip.exec().chip(), sa, 4)[0];
    let (sandwiched, _) = simra_victims(chip.exec().chip(), &simra_kernel);
    let victim = sandwiched[0];
    println!("victim: physical row {victim}");

    // Double-sided RowHammer baseline.
    let rh = rowhammer_ds_for(chip.exec().chip(), victim).expect("victim has neighbours");
    let hc_rh = measure_hc_first(chip.exec(), bank, &rh, victim, dp, dp.negated(), &search)
        .expect("RowHammer flips within the window");

    // CoMRA: repeated in-DRAM copy with the pair sandwiching the victim.
    let comra = comra_ds_for(chip.exec().chip(), victim, false).expect("victim has neighbours");
    let hc_comra = measure_hc_first(chip.exec(), bank, &comra, victim, dp, dp.negated(), &search)
        .expect("CoMRA flips within the window");

    // SiMRA: simultaneous 4-row activation (worst-case 0x00 aggressors).
    let zeros = DataPattern::ZEROS;
    let hc_simra = measure_hc_first(
        chip.exec(),
        bank,
        &simra_kernel,
        victim,
        zeros,
        zeros.negated(),
        &search,
    )
    .expect("SiMRA flips within the window");

    println!("HC_first, double-sided RowHammer : {hc_rh}");
    println!(
        "HC_first, double-sided CoMRA     : {hc_comra} ({:.2}x lower)",
        hc_rh as f64 / hc_comra as f64
    );
    println!(
        "HC_first, double-sided SiMRA-4   : {hc_simra} ({:.2}x lower)",
        hc_rh as f64 / hc_simra as f64
    );
    assert!(hc_comra < hc_rh, "Observation 1");
    assert!(hc_simra < hc_rh, "Observation 12");
    println!("PuD operations exacerbate read disturbance — Takeaways 1 and 5 reproduced.");
}
