//! Integration tests of the executor's trace instrumentation: the exact
//! event sequence emitted for a SiMRA hammer loop, loop-batch accounting,
//! and CoMRA copy events.

use std::sync::{Arc, Mutex};

use pud_bender::{ops, Executor};
use pud_dram::{profiles::TESTED_MODULES, BankId, ChipGeometry, DataPattern, Picos, RowAddr};
use pud_observe::{RingBufferSink, TraceKind};

fn executor() -> Executor {
    // TESTED_MODULES[1] is the SK Hynix module — the only manufacturer
    // whose chips perform SiMRA (§5).
    Executor::new(&TESTED_MODULES[1], ChipGeometry::scaled_for_tests(), 0, 77)
}

fn traced_executor() -> (Executor, Arc<Mutex<RingBufferSink>>) {
    let mut exec = executor();
    let ring = Arc::new(Mutex::new(RingBufferSink::new(4096)));
    exec.set_trace_sink(ring.clone());
    (exec, ring)
}

fn kind_names(ring: &Arc<Mutex<RingBufferSink>>) -> Vec<&'static str> {
    ring.lock()
        .unwrap()
        .events()
        .map(|e| e.kind.name())
        .collect()
}

#[test]
fn simra_hammer_loop_emits_exact_event_sequence() {
    // One double-sided SiMRA hammer cycle is ACT r1 – PRE – ACT r2 – PRE
    // with both delays at the nominal 3 ns (Fig. 12c). The second ACT
    // violates t_RP, so the executor detects a 4-row group activation:
    // the violation and group events trail the ACT that triggered them.
    let (mut exec, ring) = traced_executor();
    let prog = ops::simra_mask(BankId(0), RowAddr(40), 0b101, 2);
    exec.run(&prog);
    let expected = [
        "act",
        "pre",
        "act",
        "timing_violation",
        "simra_group",
        "pre",
        "act",
        "pre",
        "act",
        "timing_violation",
        "simra_group",
        "pre",
    ];
    assert_eq!(kind_names(&ring), expected);
    let guard = ring.lock().unwrap();
    let events = guard.to_vec();
    // Timestamps never go backwards.
    for w in events.windows(2) {
        assert!(w[0].t_ns <= w[1].t_ns, "{:?} before {:?}", w[0], w[1]);
    }
    for ev in &events {
        match ev.kind {
            TraceKind::TimingViolation { bank, gap_ns } => {
                assert_eq!(bank, 0);
                assert!(
                    (gap_ns - 3.0).abs() < 1e-9,
                    "pre-to-act gap is the nominal 3 ns, got {gap_ns}"
                );
            }
            TraceKind::SimraGroup {
                bank,
                rows,
                partial,
                ..
            } => {
                assert_eq!(bank, 0);
                assert_eq!(rows, 4, "mask 0b101 selects a 4-row group");
                assert!(!partial, "3 ns first activation fully engages the group");
            }
            _ => {}
        }
    }
    assert_eq!(guard.dropped(), 0);
}

#[test]
fn batched_loop_emits_loop_batch_marker() {
    // Loops longer than three iterations are replayed in bulk after two
    // live iterations; the trace stays accountable through one batch
    // marker carrying the elided iteration and ACT counts.
    let (mut exec, ring) = traced_executor();
    let a = exec.chip().to_logical(RowAddr(20));
    let b = exec.chip().to_logical(RowAddr(22));
    exec.run(&ops::double_sided_rowhammer(
        BankId(0),
        a,
        b,
        ops::t_ras(),
        10,
    ));
    let guard = ring.lock().unwrap();
    let batches: Vec<_> = guard
        .events()
        .filter_map(|e| match e.kind {
            TraceKind::LoopBatch { iterations, acts } => Some((iterations, acts)),
            _ => None,
        })
        .collect();
    // 2 live iterations (4 ACTs traced individually) + 8 replayed.
    assert_eq!(batches, vec![(8, 16)]);
    let live_acts = guard
        .events()
        .filter(|e| matches!(e.kind, TraceKind::Act { .. }))
        .count();
    assert_eq!(live_acts, 4);
}

#[test]
fn comra_copy_emits_copy_event_and_counts() {
    let (mut exec, ring) = traced_executor();
    let before = pud_observe::snapshot()
        .counter("bender.comra_copies")
        .unwrap_or(0);
    exec.write_row(BankId(0), RowAddr(8), DataPattern::CHECKER_55);
    let copied = ops::in_dram_copy(&mut exec, BankId(0), RowAddr(8), RowAddr(9));
    assert!(copied.is_some(), "same-subarray copy succeeds");
    let copies: Vec<_> = ring
        .lock()
        .unwrap()
        .events()
        .filter_map(|e| match e.kind {
            TraceKind::ComraCopy { src, dst, .. } => Some((src, dst)),
            _ => None,
        })
        .collect();
    assert_eq!(copies.len(), 1);
    let after = pud_observe::snapshot()
        .counter("bender.comra_copies")
        .unwrap_or(0);
    assert!(after > before, "global comra_copies counter advanced");
}

#[test]
fn refresh_commands_are_traced() {
    let (mut exec, ring) = traced_executor();
    let mut prog = pud_bender::TestProgram::new();
    prog.act(BankId(0), RowAddr(10), ops::t_ras())
        .pre(BankId(0), ops::t_rp())
        .refresh(Picos::from_ns(350.0));
    exec.run(&prog);
    let names = kind_names(&ring);
    assert!(names.contains(&"ref"), "{names:?}");
}

#[test]
fn detached_sink_restores_fast_path() {
    let (mut exec, ring) = traced_executor();
    assert!(exec.take_trace_sink().is_some());
    exec.run(&ops::single_sided_rowhammer(
        BankId(0),
        RowAddr(10),
        ops::t_ras(),
        2,
    ));
    assert!(ring.lock().unwrap().is_empty(), "no events after detach");
}
