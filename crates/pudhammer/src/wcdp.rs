//! Worst-case data pattern (WCDP) search (§4.2).
//!
//! For each DRAM row the paper defines the WCDP as the data pattern that
//! causes the lowest HC_first, testing `0x00`, `0xFF`, `0xAA`, `0x55` with
//! victims holding the negated aggressor pattern.

use pud_bender::Executor;
use pud_dram::{BankId, DataPattern, RowAddr};

use crate::hcfirst::{measure_hc_first_warm, HcSearch, WarmStart};
use crate::patterns::Kernel;

/// Result of a WCDP search on one victim row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WcdpResult {
    /// The worst-case aggressor pattern.
    pub pattern: DataPattern,
    /// HC_first at the worst-case pattern (`None` if no tested pattern
    /// flipped within the search cap).
    pub hc: Option<u64>,
}

/// Finds the worst-case aggressor data pattern for `victim` under `kernel`
/// by measuring HC_first for all four tested patterns.
///
/// The four searches target one victim, so each seeds the next through a
/// [`WarmStart`]: patterns whose HC_first lands inside the previous
/// converged bracket skip the exponential probe (see `hcfirst.warm.*`
/// metrics for the realized hit rate).
pub fn find_wcdp(
    exec: &mut Executor,
    bank: BankId,
    kernel: &Kernel,
    victim: RowAddr,
    search: &HcSearch,
) -> WcdpResult {
    let mut best = WcdpResult {
        pattern: DataPattern::CHECKER_55,
        hc: None,
    };
    let mut warm = WarmStart::new();
    for dp in DataPattern::TESTED {
        // Poll between per-pattern searches so a cancelled WCDP sweep
        // unwinds without starting the next full HC_first search.
        crate::fleet::supervisor::poll_cancel();
        let hc = measure_hc_first_warm(
            exec,
            bank,
            kernel,
            victim,
            dp,
            dp.negated(),
            search,
            &mut warm,
        );
        match (best.hc, hc) {
            (None, Some(_)) => best = WcdpResult { pattern: dp, hc },
            (Some(b), Some(h)) if h < b => best = WcdpResult { pattern: dp, hc },
            _ => {}
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns;
    use pud_dram::{profiles::TESTED_MODULES, ChipGeometry};

    #[test]
    fn wcdp_is_usually_a_checkerboard() {
        // Observation 3: the checkerboard pattern is, in general, the most
        // effective for CoMRA/RowHammer-class disturbance.
        let mut exec = Executor::new(&TESTED_MODULES[1], ChipGeometry::scaled_for_tests(), 0, 42);
        let search = HcSearch::default();
        let mut checker_wins = 0;
        let mut total = 0;
        for row in (10..70u32).step_by(4) {
            let victim = RowAddr(row);
            let Some(kernel) = patterns::comra_ds_for(exec.chip(), victim, false) else {
                continue;
            };
            let w = find_wcdp(&mut exec, BankId(0), &kernel, victim, &search);
            assert!(w.hc.is_some());
            total += 1;
            if w.pattern.is_checkerboard() {
                checker_wins += 1;
            }
        }
        assert!(total >= 10);
        assert!(
            checker_wins * 3 >= total * 2,
            "checkerboard should win most rows: {checker_wins}/{total}"
        );
    }

    #[test]
    fn simra_wcdp_is_a_solid_zero_aggressor() {
        // Observation 13/14: SiMRA flips 1→0, so the lowest HC_first comes
        // from victims holding 0xFF, i.e. a 0x00 aggressor pattern.
        let mut exec = Executor::new(&TESTED_MODULES[1], ChipGeometry::scaled_for_tests(), 0, 42);
        let search = HcSearch::default();
        let kernels = patterns::simra_ds_kernels(exec.chip(), pud_dram::SubarrayId(1), 4);
        let kernel = kernels[0];
        let (sandwiched, _) = patterns::simra_victims(exec.chip(), &kernel);
        let victim = sandwiched[0];
        let w = find_wcdp(&mut exec, BankId(0), &kernel, victim, &search);
        assert!(w.hc.is_some());
        assert_eq!(
            w.pattern,
            DataPattern::ZEROS,
            "aggressor 0x00 ⇒ victim 0xFF"
        );
    }
}
