//! Tables 1/2: the tested module fleet with measured minimum/average
//! HC_first for double-sided RowHammer, CoMRA, and SiMRA, side by side with
//! the paper's reported anchors.

use std::fmt;

use pud_dram::DataPattern;
use pud_observe::json::JsonObject;
use pud_observe::JsonValue;

use crate::experiments::{measure_with_dp, Scale};
use crate::fleet::checkpoint::CheckpointStore;
use crate::fleet::sweep::{SweepOutcome, SweepReport};
use crate::fleet::Fleet;
use crate::patterns::{comra_ds_for, rowhammer_ds_for};
use crate::report::{fmt_hc, Table};

/// Measured `(min, avg)` HC_first of one technique on one family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinAvg {
    /// Minimum across tested victims.
    pub min: f64,
    /// Average across tested victims.
    pub avg: f64,
}

impl MinAvg {
    fn from_values(values: &[f64]) -> Option<MinAvg> {
        if values.is_empty() {
            return None;
        }
        Some(MinAvg {
            min: values.iter().copied().fold(f64::MAX, f64::min),
            avg: values.iter().sum::<f64>() / values.len() as f64,
        })
    }
}

/// One family's row of Table 2.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// The module family.
    pub profile: &'static pud_dram::ModuleProfile,
    /// Measured RowHammer min/avg.
    pub rowhammer: Option<MinAvg>,
    /// Measured CoMRA min/avg.
    pub comra: Option<MinAvg>,
    /// Measured SiMRA min/avg (SiMRA-capable families only).
    pub simra: Option<MinAvg>,
    /// Why the family's chip was quarantined, if it was: its measurement
    /// columns are unavailable and render as `QUARANTINED`.
    pub quarantined: Option<String>,
}

/// The reproduced Table 2.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// Rows in Table 2 order.
    pub rows: Vec<Table2Row>,
    /// Fault-tolerance status of the fleet sweep.
    pub sweep: SweepReport,
}

/// Runs the Table 2 reproduction. Chips are swept in parallel per
/// [`Scale::threads`]; rows come back in fleet (Table 2) order regardless.
pub fn table2(scale: &Scale) -> Table2 {
    table2_ckpt(scale, None)
}

/// [`table2`] with an optional [`CheckpointStore`]: families already in the
/// checkpoint are decoded instead of re-measured, and freshly measured
/// families are appended to it as they complete. Quarantined families are
/// never recorded, so a resume retries them.
pub fn table2_ckpt(scale: &Scale, ckpt: Option<&CheckpointStore>) -> Table2 {
    let _span = pud_observe::span("experiment.table2");
    let mut fleet = Fleet::build(scale.fleet);
    let cap = (scale.fleet.victims_per_subarray as usize) * 6;
    let threads = scale.sweep_threads(fleet.chips.len());
    let families: Vec<(&'static pud_dram::ModuleProfile, u32)> = fleet
        .chips
        .iter()
        .map(|c| (c.profile, c.chip_index))
        .collect();
    let (outcomes, sweep) = crate::fleet::sweep::sweep_isolated(
        threads,
        scale.sweep_policy(),
        &mut fleet.chips,
        |_, chip| {
            if chip.chip_index != 0 {
                return None;
            }
            if let Some(ckpt) = ckpt {
                if let Some(row) = ckpt
                    .lookup(CHECKPOINT_STAGE, &chip.label())
                    .and_then(|data| decode_row(chip.profile, data))
                {
                    crate::fleet::supervisor::record_resumed();
                    return Some(row);
                }
            }
            let bank = chip.bank();
            let mut rh_vals = Vec::new();
            let mut comra_vals = Vec::new();
            for victim in chip.victim_rows() {
                if let Some(k) = rowhammer_ds_for(chip.exec().chip(), victim) {
                    if let Some(h) = measure_with_dp(
                        scale,
                        chip.exec(),
                        bank,
                        &k,
                        victim,
                        DataPattern::CHECKER_55,
                    ) {
                        rh_vals.push(h as f64);
                    }
                }
                if let Some(k) = comra_ds_for(chip.exec().chip(), victim, false) {
                    if let Some(h) = measure_with_dp(
                        scale,
                        chip.exec(),
                        bank,
                        &k,
                        victim,
                        DataPattern::CHECKER_55,
                    ) {
                        comra_vals.push(h as f64);
                    }
                }
            }
            let mut simra_vals = Vec::new();
            if chip.profile.supports_simra() {
                for n in crate::experiments::simra::DS_GROUP_SIZES {
                    for (kernel, victim) in crate::experiments::simra::ds_targets(chip, n, cap) {
                        if let Some(h) = measure_with_dp(
                            scale,
                            chip.exec(),
                            bank,
                            &kernel,
                            victim,
                            DataPattern::ZEROS,
                        ) {
                            simra_vals.push(h as f64);
                        }
                    }
                }
            }
            let row = Table2Row {
                profile: chip.profile,
                rowhammer: MinAvg::from_values(&rh_vals),
                comra: MinAvg::from_values(&comra_vals),
                simra: MinAvg::from_values(&simra_vals),
                quarantined: None,
            };
            if let Some(ckpt) = ckpt {
                ckpt.record(CHECKPOINT_STAGE, &chip.label(), &encode_row(&row));
            }
            Some(row)
        },
    );
    let mut rows = Vec::new();
    for (outcome, (profile, chip_index)) in outcomes.into_iter().zip(families) {
        match outcome {
            SweepOutcome::Done(Some(row)) => rows.push(row),
            SweepOutcome::Done(None) => {}
            SweepOutcome::Quarantined(err) => {
                if chip_index == 0 {
                    rows.push(Table2Row {
                        profile,
                        rowhammer: None,
                        comra: None,
                        simra: None,
                        quarantined: Some(err.message),
                    });
                }
            }
            // A cancelled or skipped family's row is simply absent from
            // the partial table (the sweep footer says why for failed
            // shards; out-of-shard units belong to another worker); it was
            // never recorded, so a resume or merge re-measures it.
            SweepOutcome::Cancelled(_) | SweepOutcome::Skipped(_) => {}
        }
    }
    sweep.record_metrics();
    Table2 { rows, sweep }
}

/// Stage label under which Table 2 rows are checkpointed.
const CHECKPOINT_STAGE: &str = "table2";

fn encode_ma(obj: JsonObject, key: &str, m: &Option<MinAvg>) -> JsonObject {
    match m {
        Some(m) => obj.raw(
            key,
            &JsonObject::new()
                .f64("min", m.min)
                .f64("avg", m.avg)
                .finish(),
        ),
        None => obj.raw(key, "null"),
    }
}

fn encode_row(row: &Table2Row) -> String {
    let obj = JsonObject::new();
    let obj = encode_ma(obj, "rowhammer", &row.rowhammer);
    let obj = encode_ma(obj, "comra", &row.comra);
    let obj = encode_ma(obj, "simra", &row.simra);
    obj.finish()
}

fn decode_ma(v: &JsonValue, key: &str) -> Option<Option<MinAvg>> {
    let field = v.get(key)?;
    if matches!(field, JsonValue::Null) {
        return Some(None);
    }
    Some(Some(MinAvg {
        min: field.get("min")?.as_f64()?,
        avg: field.get("avg")?.as_f64()?,
    }))
}

fn decode_row(profile: &'static pud_dram::ModuleProfile, v: &JsonValue) -> Option<Table2Row> {
    Some(Table2Row {
        profile,
        rowhammer: decode_ma(v, "rowhammer")?,
        comra: decode_ma(v, "comra")?,
        simra: decode_ma(v, "simra")?,
        quarantined: None,
    })
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(
            "Table 2 — measured vs paper min (avg) HC_first",
            &[
                "Family",
                "Mfr",
                "Die",
                "Den.",
                "RH meas",
                "RH paper",
                "CoMRA meas",
                "CoMRA paper",
                "SiMRA meas",
                "SiMRA paper",
            ],
        );
        let fmt_ma = |m: &Option<MinAvg>| {
            m.map_or("-".to_string(), |m| {
                format!("{} ({})", fmt_hc(m.min), fmt_hc(m.avg))
            })
        };
        let fmt_anchor =
            |a: &pud_dram::profiles::HcAnchor| format!("{} ({})", fmt_hc(a.min), fmt_hc(a.avg));
        for row in &self.rows {
            let p = row.profile;
            let meas = |m: &Option<MinAvg>| {
                if row.quarantined.is_some() {
                    "QUARANTINED".to_string()
                } else {
                    fmt_ma(m)
                }
            };
            t.push_row(vec![
                p.module_id.to_string(),
                p.chip_vendor.to_string(),
                p.die_rev.to_string(),
                p.density.to_string(),
                meas(&row.rowhammer),
                fmt_anchor(&p.rowhammer),
                meas(&row.comra),
                fmt_anchor(&p.comra),
                meas(&row.simra),
                p.simra.as_ref().map_or("N/A".into(), fmt_anchor),
            ]);
        }
        write!(f, "{t}")?;
        self.sweep.fmt_footer(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_minimums_track_the_anchors() {
        let mut scale = Scale::quick();
        scale.fleet.victims_per_subarray = 1;
        let t = table2(&scale);
        assert_eq!(t.rows.len(), 14);
        for row in &t.rows {
            let p = row.profile;
            let rh = row.rowhammer.expect("RowHammer always measurable");
            // The hero row pins the family minimum near the anchor.
            let ratio = rh.min / p.rowhammer.min;
            assert!(
                (0.4..3.0).contains(&ratio),
                "{}: measured RH min {} vs anchor {}",
                p.module_id,
                rh.min,
                p.rowhammer.min
            );
            let comra = row.comra.expect("CoMRA always measurable");
            assert!(
                comra.min < rh.min,
                "{}: CoMRA min must undercut RowHammer",
                p.module_id
            );
            assert_eq!(row.simra.is_some(), p.supports_simra(), "{}", p.module_id);
            if let Some(s) = row.simra {
                let anchor = p.simra.unwrap();
                assert!(
                    s.min < anchor.min * 20.0,
                    "{}: SiMRA min {} far from anchor {}",
                    p.module_id,
                    s.min,
                    anchor.min
                );
            }
        }
    }
}
