//! The §7 attack: bypassing in-DRAM Target Row Refresh with SiMRA.
//!
//! Uncovers the module's TRR mechanism U-TRR-style, then compares how many
//! bitflips RowHammer and SiMRA induce with the mitigation active.
//!
//! Run with: `cargo run --release --example trr_bypass_attack`

use pudhammer_suite::bender::{Executor, TestEnv};
use pudhammer_suite::dram::{profiles, BankId, ChipGeometry, DataPattern, RowAddr};
use pudhammer_suite::hammer::patterns::{simra_ds_kernels, simra_members};
use pudhammer_suite::trr::{patterns, uncover, SamplingTrr, SamplingTrrConfig};

fn protected_executor(seed: u64) -> Executor {
    let profile = profiles::most_simra_vulnerable();
    let mut exec = Executor::new(profile, ChipGeometry::scaled_for_tests(), 0, 7);
    exec.set_env(TestEnv::with_refresh());
    exec.set_observer(Box::new(SamplingTrr::new(
        SamplingTrrConfig::default(),
        profile.mapping(),
        seed,
    )));
    exec
}

fn main() {
    let profile = profiles::most_simra_vulnerable();
    println!(
        "target: {} ({}, SiMRA HC_first down to {})",
        profile.module_id,
        profile.key(),
        profile.simra.expect("SiMRA-capable").min
    );
    let bank = BankId(0);

    // --- Step 1: uncover the TRR mechanism (U-TRR analog) ---------------
    let mut probe = protected_executor(1);
    let aggressor = probe.chip().to_logical(RowAddr(40));
    let discovery = uncover(&mut probe, bank, aggressor, 18);
    println!(
        "U-TRR: aggressor tracking detected = {}, TRR-capable REF period = {:?} REFs",
        discovery.detects_aggressors, discovery.trr_ref_period
    );

    // --- Step 2: RowHammer under TRR (mostly mitigated) -----------------
    let mut exec = protected_executor(2);
    let hero = exec.engine().model().hero_row().expect("chip 0").1;
    let aggs = [RowAddr(hero.0 - 1), RowAddr(hero.0 + 1)];
    for r in hero.0 - 2..=hero.0 + 2 {
        let logical = exec.chip().to_logical(RowAddr(r));
        let dp = if aggs.contains(&RowAddr(r)) {
            DataPattern::CHECKER_55
        } else {
            DataPattern::CHECKER_AA
        };
        exec.write_row(bank, logical, dp);
    }
    let agg_logical: Vec<RowAddr> = aggs.iter().map(|&a| exec.chip().to_logical(a)).collect();
    let dummy = exec.chip().to_logical(RowAddr(5));
    let program = patterns::rowhammer_evasion(bank, &agg_logical, dummy, 120_000);
    let rh_flips = exec.run(&program).flips.len();
    println!("2-sided RowHammer, 120K hammers under TRR: {rh_flips} bitflips");

    // --- Step 3: SiMRA under TRR (bypasses it) --------------------------
    let mut exec = protected_executor(3);
    let sa = exec.chip().geometry().subarray_of(hero).expect("in range");
    let kernel = simra_ds_kernels(exec.chip(), sa, 16)[0];
    let members = simra_members(exec.chip(), &kernel).expect("SiMRA kernel");
    for r in members[0].0.saturating_sub(1)..=members[members.len() - 1].0 + 1 {
        let logical = exec.chip().to_logical(RowAddr(r));
        let dp = if members.contains(&RowAddr(r)) {
            DataPattern::ZEROS
        } else {
            DataPattern::ONES
        };
        exec.write_row(bank, logical, dp);
    }
    let pudhammer_suite::hammer::patterns::Kernel::Simra { r1, r2, .. } = kernel else {
        unreachable!("simra_ds_kernels returns SiMRA kernels")
    };
    let program = patterns::simra_evasion(bank, r1, r2, 120_000);
    let simra_flips = exec.run(&program).flips.len();
    println!("SiMRA-16, 120K operations under TRR: {simra_flips} bitflips");

    assert!(
        simra_flips as f64 > (rh_flips as f64).max(1.0) * 10.0,
        "SiMRA should bypass TRR (Observation 25)"
    );
    println!(
        "SiMRA induced {:.0}x more bitflips than RowHammer despite TRR — Takeaway 9 reproduced.",
        simra_flips as f64 / (rh_flips as f64).max(1.0)
    );
}
