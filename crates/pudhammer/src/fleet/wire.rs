//! Length-prefixed frame protocol between the shard coordinator and its
//! worker processes.
//!
//! A shard worker (the `repro` binary re-exec'd with `--shard-worker`)
//! speaks this protocol on its **stdout**: experiment output never goes
//! there (workers run quiet; rendering is the coordinator's job), so the
//! stream carries only frames. Each frame is
//!
//! ```text
//! [u32 LE payload length][u8 frame type][payload: UTF-8 JSON]
//! ```
//!
//! The JSON payload keeps frames debuggable (`xxd` shows readable field
//! names) and versionable without a binary schema. Three frame types
//! exist:
//!
//! - [`Frame::Hello`] — sent once at startup: shard identity, fleet
//!   fingerprint, target, and respawn attempt. The coordinator validates
//!   it against the campaign before trusting anything else.
//! - [`Frame::Progress`] — periodic live-counter samples, forwarded into
//!   the coordinator's aggregated progress display.
//! - [`Frame::Done`] — sent once on orderly completion. A worker that
//!   crashes (abort, OOM-kill, SIGKILL) never sends it: the coordinator
//!   detects the EOF-without-`Done` and schedules a respawn.
//!
//! A truncated frame (EOF mid-length, mid-type, or mid-payload) is
//! reported as [`WireError::Truncated`] — the signature of a worker dying
//! mid-write. A clean EOF between frames decodes as `Ok(None)`.

use std::io::{Read, Write};

use pud_observe::json::JsonObject;
use pud_observe::JsonValue;

/// Maximum accepted payload size. Frames are small (a few hundred bytes);
/// anything larger means a corrupt length word, not a real frame.
pub const MAX_PAYLOAD: u32 = 1 << 20;

/// Frame type tags on the wire.
const TAG_HELLO: u8 = 1;
const TAG_PROGRESS: u8 = 2;
const TAG_DONE: u8 = 3;

/// One coordinator↔worker protocol frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Worker startup announcement.
    Hello {
        /// This worker's shard index, `0..count`.
        shard: u32,
        /// Total shard count of the campaign.
        count: u32,
        /// The worker's [`crate::fleet::FleetConfig::fingerprint`] — must
        /// match the coordinator's.
        fingerprint: u64,
        /// The experiment target the worker is running.
        target: String,
        /// Respawn attempt number (0 = first spawn).
        attempt: u32,
    },
    /// Periodic live-counter sample.
    Progress {
        /// Commands executed so far.
        commands: u64,
        /// Sweep items completed.
        items_done: u64,
        /// Sweep items announced.
        items_total: u64,
        /// Transient-fault retries.
        retries: u64,
        /// Quarantined chips.
        quarantined: u64,
        /// Supervisor units completed.
        units_done: u64,
    },
    /// Orderly completion report.
    Done {
        /// Supervisor units completed over the worker's lifetime.
        units_done: u64,
        /// Transient-fault retries.
        retries: u64,
        /// Quarantined chips.
        quarantined: u64,
        /// Whether the worker was cancelled (deadline/interrupt) rather
        /// than running to completion.
        cancelled: bool,
        /// The worker's peak resident set size, in KiB (0 if unknown).
        peak_rss_kb: u64,
        /// Whether the worker latched a checkpoint write error (its shard
        /// checkpoint may be incomplete).
        write_error: bool,
    },
}

/// Decode-side failures.
#[derive(Debug, PartialEq, Eq)]
pub enum WireError {
    /// The stream ended inside a frame — a worker died mid-write.
    Truncated,
    /// An I/O error while reading or writing.
    Io(String),
    /// An unknown frame tag or undecodable payload.
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "stream truncated mid-frame"),
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::Malformed(e) => write!(f, "malformed frame: {e}"),
        }
    }
}

impl Frame {
    fn tag(&self) -> u8 {
        match self {
            Frame::Hello { .. } => TAG_HELLO,
            Frame::Progress { .. } => TAG_PROGRESS,
            Frame::Done { .. } => TAG_DONE,
        }
    }

    fn payload(&self) -> String {
        match self {
            Frame::Hello {
                shard,
                count,
                fingerprint,
                target,
                attempt,
            } => JsonObject::new()
                .u64("shard", u64::from(*shard))
                .u64("count", u64::from(*count))
                .u64("fingerprint", *fingerprint)
                .str("target", target)
                .u64("attempt", u64::from(*attempt))
                .finish(),
            Frame::Progress {
                commands,
                items_done,
                items_total,
                retries,
                quarantined,
                units_done,
            } => JsonObject::new()
                .u64("commands", *commands)
                .u64("items_done", *items_done)
                .u64("items_total", *items_total)
                .u64("retries", *retries)
                .u64("quarantined", *quarantined)
                .u64("units_done", *units_done)
                .finish(),
            Frame::Done {
                units_done,
                retries,
                quarantined,
                cancelled,
                peak_rss_kb,
                write_error,
            } => JsonObject::new()
                .u64("units_done", *units_done)
                .u64("retries", *retries)
                .u64("quarantined", *quarantined)
                .bool("cancelled", *cancelled)
                .u64("peak_rss_kb", *peak_rss_kb)
                .bool("write_error", *write_error)
                .finish(),
        }
    }

    /// Writes this frame (length word, tag, payload) and flushes, so a
    /// frame is either fully visible to the coordinator or not at all —
    /// the coordinator's truncation detection depends on workers never
    /// sitting on a half-buffered frame.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), WireError> {
        let payload = self.payload();
        let bytes = payload.as_bytes();
        let len = u32::try_from(bytes.len())
            .map_err(|_| WireError::Malformed("frame too large".into()))?;
        let io = |e: std::io::Error| WireError::Io(e.to_string());
        w.write_all(&len.to_le_bytes()).map_err(io)?;
        w.write_all(&[self.tag()]).map_err(io)?;
        w.write_all(bytes).map_err(io)?;
        w.flush().map_err(io)
    }

    /// Reads the next frame. `Ok(None)` on clean EOF (stream ended exactly
    /// between frames); [`WireError::Truncated`] if it ended inside one.
    pub fn read_from(r: &mut impl Read) -> Result<Option<Frame>, WireError> {
        let mut len_buf = [0u8; 4];
        match read_exact_or_eof(r, &mut len_buf)? {
            ReadOutcome::Eof => return Ok(None),
            ReadOutcome::Partial => return Err(WireError::Truncated),
            ReadOutcome::Full => {}
        }
        let len = u32::from_le_bytes(len_buf);
        if len > MAX_PAYLOAD {
            return Err(WireError::Malformed(format!(
                "payload length {len} exceeds cap"
            )));
        }
        let mut tag = [0u8; 1];
        match read_exact_or_eof(r, &mut tag)? {
            ReadOutcome::Full => {}
            _ => return Err(WireError::Truncated),
        }
        let mut payload = vec![0u8; len as usize];
        match read_exact_or_eof(r, &mut payload)? {
            ReadOutcome::Full => {}
            _ => return Err(WireError::Truncated),
        }
        let text = String::from_utf8(payload)
            .map_err(|_| WireError::Malformed("payload is not UTF-8".into()))?;
        let v = JsonValue::parse(&text).map_err(WireError::Malformed)?;
        Frame::decode(tag[0], &v).map(Some)
    }

    fn decode(tag: u8, v: &JsonValue) -> Result<Frame, WireError> {
        let field = |key: &str| {
            v.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| WireError::Malformed(format!("missing field {key}")))
        };
        let flag = |key: &str| match v.get(key) {
            Some(JsonValue::Bool(b)) => Ok(*b),
            _ => Err(WireError::Malformed(format!("missing field {key}"))),
        };
        match tag {
            TAG_HELLO => Ok(Frame::Hello {
                shard: field("shard")? as u32,
                count: field("count")? as u32,
                fingerprint: field("fingerprint")?,
                target: v
                    .get("target")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| WireError::Malformed("missing field target".into()))?
                    .to_string(),
                attempt: field("attempt")? as u32,
            }),
            TAG_PROGRESS => Ok(Frame::Progress {
                commands: field("commands")?,
                items_done: field("items_done")?,
                items_total: field("items_total")?,
                retries: field("retries")?,
                quarantined: field("quarantined")?,
                units_done: field("units_done")?,
            }),
            TAG_DONE => Ok(Frame::Done {
                units_done: field("units_done")?,
                retries: field("retries")?,
                quarantined: field("quarantined")?,
                cancelled: flag("cancelled")?,
                peak_rss_kb: field("peak_rss_kb")?,
                write_error: flag("write_error")?,
            }),
            other => Err(WireError::Malformed(format!("unknown frame tag {other}"))),
        }
    }
}

/// One event from a [`FrameStream`].
#[derive(Debug, PartialEq, Eq)]
pub enum Heartbeat {
    /// A frame arrived.
    Frame(Frame),
    /// The stream ended cleanly between frames.
    Eof,
    /// The stream failed (truncation, I/O, malformed frame).
    Err(WireError),
}

/// A frame reader with a *timeout*: [`Frame::read_from`] blocks forever on
/// a stream that stays open but silent — exactly the failure mode of a
/// hung worker — so the coordinator's watchdog reads through this instead.
/// A background thread pumps the blocking reads into a channel; the owner
/// polls with [`FrameStream::next_within`].
///
/// The reader thread is detached: once the stream's far end dies (the
/// watchdog SIGKILLs the worker), the pending blocking read returns
/// (EOF/error) and the thread exits on its own.
pub struct FrameStream {
    rx: std::sync::mpsc::Receiver<Heartbeat>,
}

impl FrameStream {
    /// Spawns the reader thread over `r`.
    pub fn spawn(mut r: impl Read + Send + 'static) -> FrameStream {
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || loop {
            let beat = match Frame::read_from(&mut r) {
                Ok(Some(frame)) => Heartbeat::Frame(frame),
                Ok(None) => Heartbeat::Eof,
                Err(e) => Heartbeat::Err(e),
            };
            let terminal = !matches!(beat, Heartbeat::Frame(_));
            if tx.send(beat).is_err() || terminal {
                return;
            }
        });
        FrameStream { rx }
    }

    /// Waits up to `timeout` for the next stream event. `None` means the
    /// stream is *silent* — open, but nothing arrived in the window. After
    /// an [`Heartbeat::Eof`] or [`Heartbeat::Err`] the stream yields
    /// nothing further (the reader thread has exited).
    pub fn next_within(&self, timeout: std::time::Duration) -> Option<Heartbeat> {
        match self.rx.recv_timeout(timeout) {
            Ok(beat) => Some(beat),
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => None,
            // A disconnected channel after a terminal event was already
            // consumed: report it as EOF forever rather than None, so a
            // caller that keeps polling cannot misread a finished stream
            // as a hung one.
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => Some(Heartbeat::Eof),
        }
    }
}

enum ReadOutcome {
    Full,
    Partial,
    Eof,
}

/// `read_exact` that distinguishes "EOF before any byte" from "EOF inside
/// the buffer" — the difference between a finished worker and a dead one.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<ReadOutcome, WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::Partial
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e.to_string())),
        }
    }
    Ok(ReadOutcome::Full)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let mut buf = Vec::new();
        frame.write_to(&mut buf).expect("write");
        let mut cursor = &buf[..];
        let got = Frame::read_from(&mut cursor).expect("read").expect("frame");
        assert_eq!(got, frame);
        assert_eq!(Frame::read_from(&mut cursor), Ok(None), "clean EOF after");
    }

    #[test]
    fn frames_round_trip() {
        roundtrip(Frame::Hello {
            shard: 2,
            count: 4,
            fingerprint: 0xDEAD_BEEF_1234_5678,
            target: "table2".into(),
            attempt: 1,
        });
        roundtrip(Frame::Progress {
            commands: 1_000_000,
            items_done: 3,
            items_total: 14,
            retries: 1,
            quarantined: 0,
            units_done: 3,
        });
        roundtrip(Frame::Done {
            units_done: 14,
            retries: 2,
            quarantined: 1,
            cancelled: false,
            peak_rss_kb: 123_456,
            write_error: false,
        });
    }

    #[test]
    fn several_frames_stream_back_to_back() {
        let frames = vec![
            Frame::Hello {
                shard: 0,
                count: 1,
                fingerprint: 7,
                target: "fig10".into(),
                attempt: 0,
            },
            Frame::Progress {
                commands: 10,
                items_done: 0,
                items_total: 4,
                retries: 0,
                quarantined: 0,
                units_done: 0,
            },
            Frame::Done {
                units_done: 4,
                retries: 0,
                quarantined: 0,
                cancelled: true,
                peak_rss_kb: 0,
                write_error: true,
            },
        ];
        let mut buf = Vec::new();
        for f in &frames {
            f.write_to(&mut buf).unwrap();
        }
        let mut cursor = &buf[..];
        let mut got = Vec::new();
        while let Some(f) = Frame::read_from(&mut cursor).unwrap() {
            got.push(f);
        }
        assert_eq!(got, frames);
    }

    #[test]
    fn truncation_is_detected_not_silently_eof() {
        let frame = Frame::Done {
            units_done: 1,
            retries: 0,
            quarantined: 0,
            cancelled: false,
            peak_rss_kb: 42,
            write_error: false,
        };
        let mut buf = Vec::new();
        frame.write_to(&mut buf).unwrap();
        // Cut the stream at every possible offset inside the frame: all of
        // them must read as Truncated, never as a clean EOF or a frame.
        for cut in 1..buf.len() {
            let mut cursor = &buf[..cut];
            assert_eq!(
                Frame::read_from(&mut cursor),
                Err(WireError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn absurd_length_word_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.push(TAG_DONE);
        let mut cursor = &buf[..];
        assert!(matches!(
            Frame::read_from(&mut cursor),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn frame_streams_deliver_frames_then_eof_and_time_out_on_silence() {
        use std::time::Duration;
        let frame = Frame::Progress {
            commands: 1,
            items_done: 0,
            items_total: 1,
            retries: 0,
            quarantined: 0,
            units_done: 0,
        };
        let mut buf = Vec::new();
        frame.write_to(&mut buf).unwrap();
        // A finite buffer: one frame, then clean EOF, then EOF forever.
        let stream = FrameStream::spawn(std::io::Cursor::new(buf));
        assert_eq!(
            stream.next_within(Duration::from_secs(5)),
            Some(Heartbeat::Frame(frame))
        );
        assert_eq!(
            stream.next_within(Duration::from_secs(5)),
            Some(Heartbeat::Eof)
        );
        assert_eq!(
            stream.next_within(Duration::from_millis(10)),
            Some(Heartbeat::Eof),
            "a finished stream keeps reading as finished, never as hung"
        );
        // A pipe nobody writes to: silence, reported as None within the
        // timeout window. The write end leaks into a zombie reader thread,
        // which is exactly the detached-thread design.
        let (reader, writer) = std::io::pipe().expect("pipe");
        let stream = FrameStream::spawn(reader);
        assert_eq!(stream.next_within(Duration::from_millis(50)), None);
        drop(writer);
        assert_eq!(
            stream.next_within(Duration::from_secs(5)),
            Some(Heartbeat::Eof)
        );
    }

    #[test]
    fn truncated_streams_surface_the_error_through_the_stream() {
        use std::time::Duration;
        let frame = Frame::Done {
            units_done: 1,
            retries: 0,
            quarantined: 0,
            cancelled: false,
            peak_rss_kb: 0,
            write_error: false,
        };
        let mut buf = Vec::new();
        frame.write_to(&mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        let stream = FrameStream::spawn(std::io::Cursor::new(buf));
        assert_eq!(
            stream.next_within(Duration::from_secs(5)),
            Some(Heartbeat::Err(WireError::Truncated))
        );
    }

    #[test]
    fn unknown_tag_is_malformed() {
        let payload = b"{}";
        let mut buf = Vec::new();
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.push(99);
        buf.extend_from_slice(payload);
        let mut cursor = &buf[..];
        assert!(matches!(
            Frame::read_from(&mut cursor),
            Err(WireError::Malformed(_))
        ));
    }
}
