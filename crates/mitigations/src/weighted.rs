//! Countermeasure 2 (§8.1): weighted contribution of different row
//! activation types.
//!
//! Each CoMRA or SiMRA operation is accounted as an equivalent number of
//! double-sided RowHammer activations, so existing counter-based
//! mitigations keep a single threshold. This module derives the weights
//! from the characterized HC_first anchors and verifies they are safe
//! (never undercount) for every tested family.

use pud_dram::profiles::{self, ModuleProfile};

/// Activation-type weights relative to one RowHammer activation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivationWeights {
    /// The baseline RowHammer threshold the weights are relative to.
    pub rowhammer_threshold: f64,
    /// Equivalent hammers per CoMRA operation.
    pub comra: f64,
    /// Equivalent hammers per SiMRA operation.
    pub simra: f64,
}

impl ActivationWeights {
    /// Derives weights from one family's anchors: weight(op) =
    /// `HC_first(RowHammer) / HC_first(op)` (§8.2's formula, e.g.
    /// 4K/20 = 200 for SiMRA and 4K/400 = 10 for CoMRA).
    pub fn for_profile(profile: &ModuleProfile) -> ActivationWeights {
        let rh = profile.rowhammer.min;
        ActivationWeights {
            rowhammer_threshold: rh,
            comra: (rh / profile.comra.min).ceil(),
            simra: profile.simra.map_or(1.0, |s| (rh / s.min).ceil()),
        }
    }

    /// Derives fleet-wide safe weights: the maximum per-family weight, with
    /// the fleet-minimum RowHammer threshold.
    pub fn fleet_safe() -> ActivationWeights {
        let mut rh = f64::MAX;
        let mut comra: f64 = 1.0;
        let mut simra: f64 = 1.0;
        for p in &profiles::TESTED_MODULES {
            rh = rh.min(p.rowhammer.min);
            let w = ActivationWeights::for_profile(p);
            comra = comra.max(w.comra);
            simra = simra.max(w.simra);
        }
        ActivationWeights {
            rowhammer_threshold: rh,
            comra,
            simra,
        }
    }

    /// Whether a sequence of `(rowhammer, comra, simra)` operation counts is
    /// guaranteed flip-free when the weighted sum stays below the threshold.
    ///
    /// Safety condition: weighted accounting must reach the threshold no
    /// later than the true worst-case operation mix reaches its HC_first.
    pub fn is_safe_for(&self, profile: &ModuleProfile) -> bool {
        // Per operation type, the counted weight per op must be at least
        // threshold / HC_first(op).
        let ok_comra = self.comra >= self.rowhammer_threshold / profile.comra.min
            || self.rowhammer_threshold <= profile.rowhammer.min;
        let needed_comra = profile.rowhammer.min / profile.comra.min;
        let needed_simra = profile.simra.map_or(0.0, |s| profile.rowhammer.min / s.min);
        let _ = ok_comra;
        self.rowhammer_threshold <= profile.rowhammer.min
            && self.comra + 1e-9
                >= needed_comra * (self.rowhammer_threshold / profile.rowhammer.min)
            && (profile.simra.is_none()
                || self.simra + 1e-9
                    >= needed_simra * (self.rowhammer_threshold / profile.rowhammer.min))
    }

    /// Counter increment for a hammer sequence.
    pub fn weigh(&self, rowhammer_acts: u64, comra_ops: u64, simra_ops: u64) -> f64 {
        rowhammer_acts as f64 + self.comra * comra_ops as f64 + self.simra * simra_ops as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pud_dram::profiles::TESTED_MODULES;

    #[test]
    fn per_family_weights_match_the_paper_formula() {
        // §8.2's example numbers: ≈4K/≈400/≈20 give weights 10 and 200; our
        // Table 2 anchors give the same order of magnitude.
        let a8 = &TESTED_MODULES[1]; // SK Hynix 8Gb A-die
        let w = ActivationWeights::for_profile(a8);
        assert!(w.simra >= 200.0, "simra weight {}", w.simra);
        assert!(w.comra >= 10.0, "comra weight {}", w.comra);
    }

    #[test]
    fn fleet_safe_weights_cover_every_family() {
        let w = ActivationWeights::fleet_safe();
        for p in &TESTED_MODULES {
            assert!(w.is_safe_for(p), "{} not covered", p.key());
        }
    }

    #[test]
    fn weighing_accumulates_linearly() {
        let w = ActivationWeights {
            rowhammer_threshold: 4_000.0,
            comra: 10.0,
            simra: 200.0,
        };
        assert_eq!(w.weigh(100, 10, 2), 100.0 + 100.0 + 400.0);
        // 20 SiMRA ops hit a 4000 threshold — equivalent protection to the
        // naive RDT=20 configuration.
        assert!(w.weigh(0, 0, 20) >= w.rowhammer_threshold);
    }

    #[test]
    fn under_weighted_config_is_flagged_unsafe() {
        let w = ActivationWeights {
            rowhammer_threshold: 25_000.0,
            comra: 2.0,
            simra: 5.0, // far below 25_000/26
        };
        let a8 = &TESTED_MODULES[1];
        assert!(!w.is_safe_for(a8));
    }
}
