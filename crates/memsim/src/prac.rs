//! Per Row Activation Counting (PRAC), adapted for PuD operations (§8.2).
//!
//! PRAC (JEDEC DDR5, April 2024) keeps one activation counter per row;
//! when a counter reaches the read-disturbance threshold (RDT) the chip
//! asserts back-off and the controller must issue RFM, which preventively
//! refreshes victims. A SiMRA operation activates up to 32 rows at once,
//! so the adapted designs must update multiple counters:
//!
//! - **PRAC-AO** (area-optimized) updates them sequentially — one extra
//!   `t_RC` per additional row, blocking the bank for up to ~1.5 µs;
//! - **PRAC-PO** (performance-optimized) updates them simultaneously.
//!
//! Two PRAC-PO configurations are evaluated: **Naive** (RDT lowered to the
//! lowest SiMRA HC_first, ≈20) and **Weighted Counting** (RDT ≈ 4000 with
//! each operation counted by its relative disturbance: SiMRA = 200,
//! CoMRA = 10, ACT = 1 — §8.2 "Weighted Counting Optimization").

use std::sync::Arc;

use pud_observe::Counter;

/// The kind of row activation, for weighted counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActKind {
    /// A normal single-row activation.
    Normal,
    /// One CoMRA (in-DRAM copy) operation.
    Comra,
    /// One SiMRA (simultaneous multi-row activation) operation.
    Simra,
}

/// Mitigation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mitigation {
    /// No read-disturbance mitigation (the evaluation baseline).
    None,
    /// PRAC-PO with the RDT lowered to the lowest SiMRA HC_first.
    PracPoNaive,
    /// PRAC-PO with weighted counting.
    PracPoWeighted,
    /// PRAC-AO with weighted counting (sequential counter updates).
    PracAoWeighted,
}

impl Mitigation {
    /// Read-disturbance threshold for the configuration.
    ///
    /// §8.2: the lowest HC_first values are ≈4K (RowHammer), ≈400 (CoMRA),
    /// and ≈20 (SiMRA); Naive lowers the RDT to 20, weighted counting keeps
    /// RDT = 4000 and scales each operation's contribution instead.
    pub fn rdt(self) -> u64 {
        match self {
            Mitigation::None => u64::MAX,
            Mitigation::PracPoNaive => 20,
            Mitigation::PracPoWeighted | Mitigation::PracAoWeighted => 4_000,
        }
    }

    /// Counter increment for an operation of `kind`.
    pub fn weight(self, kind: ActKind) -> u64 {
        match self {
            Mitigation::None => 0,
            Mitigation::PracPoNaive => 1,
            Mitigation::PracPoWeighted | Mitigation::PracAoWeighted => match kind {
                ActKind::Normal => 1,
                ActKind::Comra => 10,
                ActKind::Simra => 200,
            },
        }
    }

    /// Whether counter updates are sequential (PRAC-AO).
    pub fn sequential_updates(self) -> bool {
        matches!(self, Mitigation::PracAoWeighted)
    }
}

/// Result of accounting one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PracOutcome {
    /// Extra bank-busy nanoseconds for the counter update (PRAC-AO).
    pub extra_latency_ns: u64,
    /// Back-off asserted: the controller must issue an RFM to this bank.
    pub alert: bool,
}

/// Per-row activation counters for the whole memory system.
#[derive(Debug, Clone)]
pub struct Prac {
    mitigation: Mitigation,
    rows_per_bank: u32,
    counters: Vec<Vec<u64>>,
    rfms_serviced: u64,
    backoffs_metric: Arc<Counter>,
    rfm_metric: Arc<Counter>,
}

impl Prac {
    /// Creates counters for `banks` banks of `rows_per_bank` rows.
    pub fn new(mitigation: Mitigation, banks: usize, rows_per_bank: u32) -> Prac {
        Prac {
            mitigation,
            rows_per_bank,
            counters: vec![vec![0; rows_per_bank as usize]; banks],
            rfms_serviced: 0,
            backoffs_metric: pud_observe::counter("memsim.abo_backoffs"),
            rfm_metric: pud_observe::counter("memsim.rfm_issued"),
        }
    }

    /// The configured mitigation.
    pub fn mitigation(&self) -> Mitigation {
        self.mitigation
    }

    /// Accounts one operation activating `rows` in `bank`.
    ///
    /// # Panics
    ///
    /// Panics if `bank` or any row is out of range.
    pub fn on_activation(
        &mut self,
        bank: usize,
        rows: &[u32],
        kind: ActKind,
        t_rc_ns: u64,
    ) -> PracOutcome {
        if self.mitigation == Mitigation::None {
            return PracOutcome {
                extra_latency_ns: 0,
                alert: false,
            };
        }
        let w = self.mitigation.weight(kind);
        let rdt = self.mitigation.rdt();
        let table = &mut self.counters[bank];
        let mut alert = false;
        for &r in rows {
            let c = &mut table[r as usize];
            *c += w;
            if *c >= rdt {
                alert = true;
            }
        }
        let extra_latency_ns = if self.mitigation.sequential_updates() && rows.len() > 1 {
            (rows.len() as u64 - 1) * t_rc_ns
        } else {
            0
        };
        PracOutcome {
            extra_latency_ns,
            alert,
        }
    }

    /// Services a back-off episode on `bank`: every row at or above the RDT
    /// gets one RFM (victims preventively refreshed, counter reset).
    ///
    /// Returns the number of RFM commands issued — the memory controller is
    /// blocked for `t_RFM` per command while the alert is being cleared
    /// (the DDR5 ABO protocol drains the channel).
    pub fn service_alert(&mut self, bank: usize) -> u64 {
        let rdt = self.mitigation.rdt();
        let mut rfms = 0;
        for c in &mut self.counters[bank] {
            if *c >= rdt {
                *c = 0;
                rfms += 1;
            }
        }
        self.rfms_serviced += rfms;
        self.backoffs_metric.incr();
        self.rfm_metric.add(rfms);
        rfms
    }

    /// Total RFMs serviced.
    pub fn rfm_count(&self) -> u64 {
        self.rfms_serviced
    }

    /// The highest counter value in a bank (diagnostics).
    pub fn max_counter(&self, bank: usize) -> u64 {
        self.counters[bank].iter().copied().max().unwrap_or(0)
    }

    /// Number of rows per bank.
    pub fn rows_per_bank(&self) -> u32 {
        self.rows_per_bank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_counting_matches_paper_weights() {
        let m = Mitigation::PracPoWeighted;
        assert_eq!(m.weight(ActKind::Normal), 1);
        assert_eq!(m.weight(ActKind::Comra), 10);
        assert_eq!(m.weight(ActKind::Simra), 200);
        assert_eq!(m.rdt(), 4_000);
        assert_eq!(Mitigation::PracPoNaive.rdt(), 20);
    }

    #[test]
    fn naive_alerts_after_twenty_activations() {
        let mut p = Prac::new(Mitigation::PracPoNaive, 1, 64);
        for i in 0..19 {
            let out = p.on_activation(0, &[5], ActKind::Normal, 47);
            assert!(!out.alert, "no alert at activation {i}");
        }
        assert!(p.on_activation(0, &[5], ActKind::Normal, 47).alert);
        assert_eq!(p.service_alert(0), 1);
        assert_eq!(p.max_counter(0), 0);
        assert_eq!(p.rfm_count(), 1);
    }

    #[test]
    fn weighted_simra_alerts_after_twenty_ops() {
        // 20 SiMRA ops × 200 = 4000 = RDT, matching the naive threshold in
        // operations — the weighting preserves security (§8.2).
        let mut p = Prac::new(Mitigation::PracPoWeighted, 1, 64);
        let rows: Vec<u32> = (0..32).collect();
        for _ in 0..19 {
            assert!(!p.on_activation(0, &rows, ActKind::Simra, 47).alert);
        }
        assert!(p.on_activation(0, &rows, ActKind::Simra, 47).alert);
    }

    #[test]
    fn weighted_normal_activations_alert_at_4000() {
        let mut p = Prac::new(Mitigation::PracPoWeighted, 1, 64);
        for _ in 0..3_999 {
            assert!(!p.on_activation(0, &[7], ActKind::Normal, 47).alert);
        }
        assert!(p.on_activation(0, &[7], ActKind::Normal, 47).alert);
    }

    #[test]
    fn area_optimized_pays_sequential_latency() {
        let mut p = Prac::new(Mitigation::PracAoWeighted, 1, 64);
        let rows: Vec<u32> = (0..32).collect();
        let out = p.on_activation(0, &rows, ActKind::Simra, 47);
        // 31 extra counter updates × tRC ≈ 1.5 µs (§8.2 PRAC-AO analysis).
        assert_eq!(out.extra_latency_ns, 31 * 47);
        assert!(out.extra_latency_ns > 1_400);
        // PRAC-PO pays nothing.
        let mut po = Prac::new(Mitigation::PracPoWeighted, 1, 64);
        assert_eq!(
            po.on_activation(0, &rows, ActKind::Simra, 47)
                .extra_latency_ns,
            0
        );
    }

    #[test]
    fn none_mode_never_alerts() {
        let mut p = Prac::new(Mitigation::None, 1, 8);
        for _ in 0..100_000 {
            assert!(!p.on_activation(0, &[0], ActKind::Simra, 47).alert);
        }
    }

    #[test]
    fn rfm_resets_only_saturated_rows() {
        let mut p = Prac::new(Mitigation::PracPoNaive, 1, 8);
        for _ in 0..20 {
            p.on_activation(0, &[1], ActKind::Normal, 47);
        }
        for _ in 0..5 {
            p.on_activation(0, &[2], ActKind::Normal, 47);
        }
        assert_eq!(p.service_alert(0), 1, "one RFM per saturated row");
        assert_eq!(p.max_counter(0), 5, "unsaturated counters persist");
    }
}
