//! Bench target regenerating Fig. 24 of the paper.

fn main() {
    pud_bench::run_experiment("fig24_trr_bypass", || {
        pudhammer::experiments::trr_eval::fig24(&pud_bench::bench_scale())
    });
}
