//! Standard attack kernels and high-level PuD operations.
//!
//! The program builders return the exact command streams the paper
//! describes (Figs. 3c, 12c); the `in_dram_*` helpers drive an executor to
//! perform functional PuD operations (RowClone copy, multi-row copy,
//! bitwise MAJ/AND/OR) the way prior work does on COTS chips.

use pud_dram::{BankId, DataPattern, Picos, RowAddr, RowData};

use crate::executor::Executor;
use crate::program::TestProgram;
use crate::simra_decode::pair_for_mask;

/// Nominal `t_RAS` used by the kernels.
pub fn t_ras() -> Picos {
    Picos::from_ns(pud_disturb::calib::T_RAS_NS)
}

/// Nominal `t_RP` used by the kernels.
pub fn t_rp() -> Picos {
    Picos::from_ns(pud_disturb::calib::T_RP_NS)
}

/// Double-sided RowHammer: `count` alternating activation pairs of logical
/// rows `a` and `b` with aggressor on-time `t_aggon`.
pub fn double_sided_rowhammer(
    bank: BankId,
    a: RowAddr,
    b: RowAddr,
    t_aggon: Picos,
    count: u64,
) -> TestProgram {
    let mut p = TestProgram::new();
    p.repeat(count, |body| {
        body.act(bank, a, t_aggon)
            .pre(bank, t_rp())
            .act(bank, b, t_aggon)
            .pre(bank, t_rp());
    });
    p
}

/// Single-sided RowHammer: `count` activations of logical row `a`.
pub fn single_sided_rowhammer(bank: BankId, a: RowAddr, t_aggon: Picos, count: u64) -> TestProgram {
    let mut p = TestProgram::new();
    p.repeat(count, |body| {
        body.act(bank, a, t_aggon).pre(bank, t_rp());
    });
    p
}

/// One CoMRA hammer cycle repeated `count` times (Fig. 3c):
/// `ACT src – tRAS – PRE – pre_to_act (violated) – ACT dst – t_aggon – PRE`.
pub fn comra(
    bank: BankId,
    src: RowAddr,
    dst: RowAddr,
    pre_to_act: Picos,
    t_aggon: Picos,
    count: u64,
) -> TestProgram {
    let mut p = TestProgram::new();
    p.repeat(count, |body| {
        body.act(bank, src, t_ras())
            .pre(bank, pre_to_act)
            .act(bank, dst, t_aggon)
            .pre(bank, t_rp());
    });
    p
}

/// One SiMRA hammer cycle repeated `count` times (Fig. 12c):
/// `ACT r1 – act_to_pre – PRE – pre_to_act – ACT r2 – t_aggon – PRE`.
pub fn simra(
    bank: BankId,
    r1: RowAddr,
    r2: RowAddr,
    act_to_pre: Picos,
    pre_to_act: Picos,
    t_aggon: Picos,
    count: u64,
) -> TestProgram {
    let mut p = TestProgram::new();
    p.repeat(count, |body| {
        body.act(bank, r1, act_to_pre)
            .pre(bank, pre_to_act)
            .act(bank, r2, t_aggon)
            .pre(bank, t_rp());
    });
    p
}

/// SiMRA kernel addressing the group containing `base` with differing-bit
/// `mask`, using the paper's nominal 3 ns delays.
pub fn simra_mask(bank: BankId, base: RowAddr, mask: u32, count: u64) -> TestProgram {
    let (r1, r2) = pair_for_mask(base, mask);
    let d = Picos::from_ns(pud_disturb::calib::SIMRA_DELAY_NS);
    simra(bank, r1, r2, d, d, t_ras(), count)
}

/// Performs one in-DRAM RowClone copy of `src` into `dst` (same subarray)
/// and returns the destination row's content afterwards.
///
/// Returns `None` if the destination was never materialized (copy failed,
/// e.g. across subarrays).
pub fn in_dram_copy(
    exec: &mut Executor,
    bank: BankId,
    src: RowAddr,
    dst: RowAddr,
) -> Option<RowData> {
    let prog = comra(
        bank,
        src,
        dst,
        Picos::from_ns(pud_disturb::calib::COMRA_PRE_ACT_NS),
        t_ras(),
        1,
    );
    exec.run(&prog);
    exec.read_row(bank, dst)
}

/// Performs a bitwise majority across the SiMRA group selected by
/// `(base, mask)` after writing `inputs` to the group rows, returning the
/// result read back from the first group row.
///
/// With all-ones / all-zeros constant rows among the inputs this computes
/// multi-input AND/OR, as prior work demonstrates on COTS chips (§2.3).
///
/// # Panics
///
/// Panics if `inputs` does not have one entry per group row.
pub fn in_dram_maj(
    exec: &mut Executor,
    bank: BankId,
    base: RowAddr,
    mask: u32,
    inputs: &[DataPattern],
) -> Option<RowData> {
    let (r1, r2) = pair_for_mask(base, mask);
    let group = crate::simra_decode::simra_group(exec.chip().geometry(), r1, r2)?;
    assert_eq!(
        group.len(),
        inputs.len(),
        "one input pattern per group row required"
    );
    for (&row, &pattern) in group.iter().zip(inputs) {
        exec.write_row(bank, row, pattern);
    }
    let prog = simra_mask(bank, base, mask, 1);
    exec.run(&prog);
    exec.read_row(bank, group[0])
}

/// The §7 N-sided TRR-evasion pattern building block: hammers each of the
/// `aggressors` once per iteration, `count` iterations, inserting a REF
/// after every `acts_per_refi` activations.
pub fn n_sided_with_refresh(
    bank: BankId,
    aggressors: &[RowAddr],
    t_aggon: Picos,
    count: u64,
    acts_per_refi: u64,
) -> TestProgram {
    let mut p = TestProgram::new();
    let mut acts_since_ref = 0u64;
    let mut remaining = count;
    while remaining > 0 {
        let burst = ((acts_per_refi - acts_since_ref) / aggressors.len().max(1) as u64)
            .max(1)
            .min(remaining);
        p.repeat(burst, |body| {
            for &a in aggressors {
                body.act(bank, a, t_aggon).pre(bank, t_rp());
            }
        });
        acts_since_ref += burst * aggressors.len() as u64;
        remaining -= burst;
        if acts_since_ref >= acts_per_refi {
            p.refresh(Picos::from_ns(350.0));
            acts_since_ref = 0;
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use pud_dram::{profiles::TESTED_MODULES, ChipGeometry};

    fn executor() -> Executor {
        Executor::new(&TESTED_MODULES[1], ChipGeometry::scaled_for_tests(), 0, 11)
    }

    #[test]
    fn kernels_have_expected_act_counts() {
        let b = BankId(0);
        assert_eq!(
            double_sided_rowhammer(b, RowAddr(1), RowAddr(3), t_ras(), 100).act_count(),
            200
        );
        assert_eq!(
            single_sided_rowhammer(b, RowAddr(1), t_ras(), 100).act_count(),
            100
        );
        assert_eq!(
            comra(b, RowAddr(1), RowAddr(3), Picos::from_ns(7.5), t_ras(), 50).act_count(),
            100
        );
        assert_eq!(simra_mask(b, RowAddr(8), 0b10, 25).act_count(), 50);
    }

    #[test]
    fn in_dram_copy_copies_within_subarray() {
        let mut exec = executor();
        let bank = BankId(0);
        exec.write_row(bank, RowAddr(20), DataPattern::CHECKER_55);
        exec.write_row(bank, RowAddr(24), DataPattern::ZEROS);
        let copied = in_dram_copy(&mut exec, bank, RowAddr(20), RowAddr(24)).unwrap();
        assert!(copied.matches_pattern(DataPattern::CHECKER_55));
    }

    #[test]
    fn in_dram_copy_fails_across_subarrays() {
        let mut exec = executor();
        let bank = BankId(0);
        let rows_per_sa = exec.chip().geometry().rows_per_subarray;
        exec.write_row(bank, RowAddr(1), DataPattern::CHECKER_55);
        exec.write_row(bank, RowAddr(rows_per_sa + 1), DataPattern::ZEROS);
        let dst = in_dram_copy(&mut exec, bank, RowAddr(1), RowAddr(rows_per_sa + 1)).unwrap();
        assert!(
            dst.matches_pattern(DataPattern::ZEROS),
            "cross-subarray copy must not happen"
        );
    }

    #[test]
    fn in_dram_maj3_computes_majority() {
        let mut exec = executor();
        // A 4-row group with one tie-break gives MAJ-like semantics; use a
        // 2-bit mask for a 4-row group and supply patterns.
        let out = in_dram_maj(
            &mut exec,
            BankId(0),
            RowAddr(40),
            0b11,
            &[
                DataPattern::CHECKER_55,
                DataPattern::ONES,
                DataPattern::ZEROS,
                DataPattern::CHECKER_55,
            ],
        )
        .unwrap();
        // Majority of {0x55, 0xFF, 0x00, 0x55} (+0x55 tiebreak) = 0x55.
        assert!(out.matches_pattern(DataPattern::CHECKER_55));
    }

    #[test]
    fn in_dram_and_or_via_constant_rows() {
        let mut exec = executor();
        // AND(a, b) = MAJ3(a, b, 0); our smallest sandwich-free group is 2
        // rows + tiebreak, so use a 4-row group: MAJ(a, b, 0, 0) = AND-ish.
        let and = in_dram_maj(
            &mut exec,
            BankId(0),
            RowAddr(8),
            0b11,
            &[
                DataPattern::CHECKER_55,
                DataPattern::CHECKER_AA,
                DataPattern::ZEROS,
                DataPattern::ZEROS,
            ],
        )
        .unwrap();
        // 0x55 & 0xAA = 0x00 under majority with zero padding.
        assert!(and.matches_pattern(DataPattern::ZEROS));
        let or = in_dram_maj(
            &mut exec,
            BankId(0),
            RowAddr(16),
            0b11,
            &[
                DataPattern::CHECKER_55,
                DataPattern::CHECKER_AA,
                DataPattern::ONES,
                DataPattern::ONES,
            ],
        )
        .unwrap();
        assert!(or.matches_pattern(DataPattern::ONES));
    }

    #[test]
    fn n_sided_pattern_includes_refreshes() {
        let p = n_sided_with_refresh(BankId(0), &[RowAddr(10), RowAddr(14)], t_ras(), 400, 156);
        assert_eq!(p.act_count(), 800);
        // At 2 ACTs per iteration and 156 ACTs per tREFI, a REF appears
        // roughly every 78 iterations.
        let refs = count_refs(p.steps());
        assert!(refs >= 4, "expected several REFs, got {refs}");
    }

    fn count_refs(steps: &[crate::program::Step]) -> usize {
        steps
            .iter()
            .map(|s| match s {
                crate::program::Step::Cmd(tc) => {
                    matches!(tc.cmd, crate::command::DramCommand::Ref) as usize
                }
                crate::program::Step::Loop { count, body } => *count as usize * count_refs(body),
            })
            .sum()
    }
}
