//! Property-based tests on the core data structures and invariants,
//! spanning the DRAM model, the disturbance engine, and the executor.

use proptest::prelude::*;

use pudhammer_suite::bender::{ops, simra_decode, Executor};
use pudhammer_suite::disturb::{
    AggressionKind, DataSummary, DisturbEngine, HammerEvent, LogLogCurve, VulnModel,
};
use pudhammer_suite::dram::{
    profiles::TESTED_MODULES, BankId, ChipGeometry, DataPattern, Picos, RowAddr, RowData,
    RowMapping, SubarrayRegion,
};

fn geometry() -> ChipGeometry {
    ChipGeometry::scaled_for_tests()
}

proptest! {
    #[test]
    fn row_mapping_is_bijective(row in 0u32..100_000) {
        for mapping in [
            RowMapping::Sequential,
            RowMapping::MirrorPairs,
            RowMapping::for_manufacturer(pudhammer_suite::dram::Manufacturer::SkHynix),
            RowMapping::for_manufacturer(pudhammer_suite::dram::Manufacturer::Micron),
        ] {
            let phys = mapping.to_physical(RowAddr(row));
            prop_assert_eq!(mapping.to_logical(phys), RowAddr(row));
            // Mappings are local to aligned 8-row groups.
            prop_assert_eq!(phys.0 & !7, row & !7);
        }
    }

    #[test]
    fn row_data_flip_is_involutive(cols in 1u32..500, col_frac in 0.0f64..1.0, byte in 0u8..=255) {
        let pattern = DataPattern(byte);
        let mut row = RowData::filled(cols, pattern);
        let col = ((cols - 1) as f64 * col_frac) as u32;
        let orig = row.bit(col);
        row.flip_bit(col);
        prop_assert_eq!(row.bit(col), !orig);
        row.flip_bit(col);
        prop_assert!(row.matches_pattern(pattern));
    }

    #[test]
    fn diff_count_matches_diff_columns(cols in 64u32..512, flips in prop::collection::vec(0u32..512, 0..16)) {
        let a = RowData::filled(cols, DataPattern::ZEROS);
        let mut b = a.clone();
        for f in &flips {
            if f < &cols {
                b.set_bit(*f, true);
            }
        }
        prop_assert_eq!(a.diff_count(&b) as usize, a.diff_columns(&b).len());
    }

    #[test]
    fn majority_is_idempotent_and_bounded(byte in 0u8..=255) {
        let p = DataPattern(byte);
        let r = RowData::filled(128, p);
        prop_assert_eq!(RowData::majority(&[&r, &r, &r]), r.clone());
        // Majority with all-ones and all-zeros equals the row itself (MAJ3
        // with complementary constants is the identity).
        let ones = RowData::filled(128, DataPattern::ONES);
        let zeros = RowData::filled(128, DataPattern::ZEROS);
        prop_assert_eq!(RowData::majority3(&r, &ones, &zeros), r);
    }

    #[test]
    fn subarray_regions_partition_rows(total in 5u32..2000, idx_frac in 0.0f64..1.0) {
        let index = ((total - 1) as f64 * idx_frac) as u32;
        let region = SubarrayRegion::classify(index, total);
        prop_assert!(region.index() < 5);
        // Region boundaries are monotone in the index.
        if index + 1 < total {
            let next = SubarrayRegion::classify(index + 1, total);
            prop_assert!(next.index() >= region.index());
        }
    }

    #[test]
    fn loglog_curves_are_monotone_between_monotone_anchors(
        x in 1.0f64..100_000.0,
        y in 1.0f64..100_000.0,
    ) {
        let c = LogLogCurve::new(&[(1.0, 1.0), (10.0, 3.0), (1_000.0, 50.0), (100_000.0, 400.0)]);
        let (lo, hi) = (x.min(y), x.max(y));
        prop_assert!(c.eval(lo) <= c.eval(hi) + 1e-9);
    }

    #[test]
    fn vulnerability_sampling_is_pure(row in 0u32..1024, bank in 0u8..2) {
        let model = VulnModel::new(&TESTED_MODULES[1], geometry(), 0, 99);
        let a = model.row_vuln(BankId(bank), RowAddr(row));
        let b = model.row_vuln(BankId(bank), RowAddr(row));
        prop_assert_eq!(a, b);
        prop_assert!(a.t_rh >= TESTED_MODULES[1].rowhammer.min);
        prop_assert!(a.beta >= 0.8 && a.beta <= 1.4);
        for n in [2u8, 4, 8, 16, 32] {
            prop_assert!(a.simra_n_factor(n) >= 1.0);
        }
    }

    #[test]
    fn engine_accumulation_is_linear(reps in 1u64..2000, split in 1u64..1999) {
        let split = split.min(reps);
        let mk = || DisturbEngine::new(&TESTED_MODULES[1], geometry(), 0, 1);
        let ev = |n: u64| HammerEvent::reference(
            BankId(0),
            RowAddr(9),
            AggressionKind::RowHammerDouble,
            DataSummary::from_pattern(DataPattern::CHECKER_55),
            n,
        );
        let mut victim = RowData::filled(1024, DataPattern::CHECKER_AA);
        let mut e1 = mk();
        e1.hammer(&ev(reps), &mut victim);
        let mut e2 = mk();
        e2.hammer(&ev(split), &mut victim);
        e2.hammer(&ev(reps - split), &mut victim);
        let (a1, _) = e1.accumulated(BankId(0), RowAddr(9));
        let (a2, _) = e2.accumulated(BankId(0), RowAddr(9));
        prop_assert!((a1 - a2).abs() < 1e-6 * a1.max(1.0));
    }

    #[test]
    fn simra_groups_are_powers_of_two_and_contain_both_addresses(
        base in 0u32..96,
        mask in 1u32..32,
    ) {
        let g = geometry();
        let (r1, r2) = simra_decode::pair_for_mask(RowAddr(base), mask);
        if let Some(group) = simra_decode::simra_group(&g, r1, r2) {
            prop_assert!(group.len().is_power_of_two());
            prop_assert_eq!(group.len(), 1 << mask.count_ones());
            prop_assert!(group.contains(&r1));
            prop_assert!(group.contains(&r2));
            // Sorted and unique.
            prop_assert!(group.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn executor_rowclone_copies_any_pattern(byte in 0u8..=255, src in 2u32..60, offset in 1u32..30) {
        let dst = src + offset;
        prop_assume!(geometry().same_subarray(RowAddr(src), RowAddr(dst)));
        let mut exec = Executor::new(&TESTED_MODULES[1], geometry(), 0, 3);
        let bank = BankId(0);
        let pattern = DataPattern(byte);
        exec.write_row(bank, RowAddr(src), pattern);
        exec.write_row(bank, RowAddr(dst), pattern.negated());
        let out = ops::in_dram_copy(&mut exec, bank, RowAddr(src), RowAddr(dst));
        prop_assert!(out.expect("copy result").matches_pattern(pattern));
    }

    #[test]
    fn picos_roundtrip(ns in 0.0f64..1e9) {
        let p = Picos::from_ns(ns);
        prop_assert!((p.as_ns() - ns).abs() <= 0.000_501);
    }
}
