//! Crash-isolated sharded campaigns: chip-range partitioning, worker
//! supervision with bounded respawn, and deterministic shard-checkpoint
//! merging.
//!
//! A sharded campaign splits a fleet sweep across `N` worker *processes*
//! (the `repro` binary re-exec'd in a hidden `--shard-worker` mode). Each
//! worker owns a contiguous chip range, measures only its own units, and
//! records them into a private shard checkpoint whose header carries the
//! campaign fingerprint and the chip range (see
//! [`super::checkpoint::ShardSlot`]). The coordinator supervises the
//! workers over the [`super::wire`] protocol, respawns a crashed worker
//! (abort, OOM-kill, SIGKILL) from its last shard checkpoint with
//! exponential backoff, merges the shard files into one whole-campaign
//! checkpoint, and finally *replays* the driver in-process from the merged
//! file — so rendered output is byte-identical to a single-process run at
//! any worker count.
//!
//! Three process roles exist, expressed as an installable [`ShardMode`]:
//!
//! - **No mode** (the default): every sweep unit runs. Single-process
//!   campaigns never touch this module's global state.
//! - **Worker** ([`install_worker`]): units outside the worker's shard are
//!   skipped as [`SkipReason::OutOfShard`] — silently, another worker owns
//!   them.
//! - **Replay** ([`install_replay`]): units of shards whose worker
//!   exhausted its respawn budget are skipped as
//!   [`SkipReason::FailedShard`] and surface as `FAILED SHARD` report
//!   footers; everything else is served from the merged checkpoint.
//!
//! Ownership is a pure function of the unit index and the sweep's item
//! count ([`owner_of`]), so workers and the replay partition every sweep
//! identically without coordination.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Mutex;

use super::checkpoint::{
    frame_record, sync_parent_dir, CheckpointError, CheckpointHeader, CheckpointStore,
    SalvageReport, ShardSlot,
};
use super::supervisor;
use super::sweep::SkipReason;
use super::wire::{Frame, FrameStream, Heartbeat, WireError};

/// The shard role of this process, installed via [`install_worker`] /
/// [`install_replay`].
#[derive(Debug, Clone, PartialEq, Eq)]
enum ShardMode {
    /// This process is shard `index` of `count`: it runs only its own
    /// units.
    Worker {
        /// This worker's shard index.
        index: u32,
        /// Total shard count.
        count: u32,
    },
    /// This process replays a merged campaign of `count` shards; units
    /// owned by a shard in `failed` were never measured and are skipped.
    Replay {
        /// Total shard count the campaign ran with.
        count: u32,
        /// Shards whose worker exhausted its respawn budget (sorted).
        failed: Vec<u32>,
    },
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static MODE: Mutex<Option<ShardMode>> = Mutex::new(None);

/// Restores the previously installed shard mode (if any) on drop, so
/// nested and test installations compose — the same discipline as
/// [`supervisor::install`].
#[derive(Debug)]
pub struct ShardModeGuard {
    previous: Option<ShardMode>,
}

impl Drop for ShardModeGuard {
    fn drop(&mut self) {
        let mut current = MODE.lock().unwrap_or_else(|e| e.into_inner());
        *current = self.previous.take();
        ACTIVE.store(current.is_some(), Ordering::SeqCst);
    }
}

fn install(mode: ShardMode) -> ShardModeGuard {
    let mut current = MODE.lock().unwrap_or_else(|e| e.into_inner());
    let previous = current.replace(mode);
    ACTIVE.store(true, Ordering::SeqCst);
    ShardModeGuard { previous }
}

/// Marks this process as shard `index` of `count` until the guard drops:
/// isolating sweeps skip every unit another shard owns.
pub fn install_worker(index: u32, count: u32) -> ShardModeGuard {
    assert!(count > 0 && index < count, "shard {index} of {count}");
    install(ShardMode::Worker { index, count })
}

/// Marks this process as the coordinator's in-process replay of a
/// `count`-shard campaign until the guard drops: units owned by a shard in
/// `failed` are skipped as [`SkipReason::FailedShard`].
pub fn install_replay(count: u32, mut failed: Vec<u32>) -> ShardModeGuard {
    assert!(count > 0, "replay of a zero-shard campaign");
    failed.sort_unstable();
    failed.dedup();
    install(ShardMode::Replay { count, failed })
}

/// The shard owning item `i` of a sweep over `n` items: the balanced
/// contiguous partition `owner = i * count / n`. Pure — workers and the
/// replay agree on ownership for every sweep without coordination, and
/// every sweep of a driver partitions its own item universe.
pub fn owner_of(i: usize, n: usize, count: u32) -> u32 {
    debug_assert!(i < n);
    ((i as u64) * u64::from(count) / (n as u64)) as u32
}

/// The contiguous item range `[lo, hi)` shard `index` owns in a sweep over
/// `n` items. Inverse of [`owner_of`]: `owner_of(i, n, count) == index`
/// exactly when `lo <= i < hi`.
pub fn shard_range(index: u32, n: usize, count: u32) -> (usize, usize) {
    let lo = (u64::from(index) * (n as u64)).div_ceil(u64::from(count));
    let hi = (u64::from(index + 1) * (n as u64)).div_ceil(u64::from(count));
    (lo as usize, hi as usize)
}

/// The [`ShardSlot`] a worker stamps into its shard checkpoint header: its
/// identity plus its chip range over a fleet of `fleet_len` chips.
pub fn slot(index: u32, count: u32, fleet_len: usize) -> ShardSlot {
    let (lo, hi) = shard_range(index, fleet_len, count);
    ShardSlot {
        index,
        count,
        chip_lo: lo as u32,
        chip_hi: hi as u32,
    }
}

fn decide(mode: &ShardMode, i: usize, n: usize) -> Option<SkipReason> {
    match mode {
        ShardMode::Worker { index, count } => {
            let owner = owner_of(i, n, *count);
            (owner != *index).then_some(SkipReason::OutOfShard { shard: owner })
        }
        ShardMode::Replay { count, failed } => {
            let owner = owner_of(i, n, *count);
            failed
                .binary_search(&owner)
                .is_ok()
                .then_some(SkipReason::FailedShard { shard: owner })
        }
    }
}

/// Whether item `i` of a sweep over `n` items is out of this process's
/// shard scope. `None` (run the unit) unless a shard mode is installed —
/// the single relaxed load every un-sharded sweep pays.
pub fn skip_for(i: usize, n: usize) -> Option<SkipReason> {
    if !ACTIVE.load(Ordering::Relaxed) || n == 0 {
        return None;
    }
    let mode = MODE.lock().unwrap_or_else(|e| e.into_inner());
    decide(mode.as_ref()?, i, n)
}

/// The path of shard `index`'s checkpoint slice: `{base}.shard{i}of{n}`.
pub fn shard_path(base: &Path, index: u32, count: u32) -> PathBuf {
    let mut name = base.as_os_str().to_os_string();
    name.push(format!(".shard{index}of{count}"));
    PathBuf::from(name)
}

/// Orderly-completion stats from a worker's `Done` frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Supervisor units the worker completed over its lifetime.
    pub units_done: u64,
    /// Transient-fault retries inside the worker.
    pub retries: u64,
    /// Chips the worker quarantined.
    pub quarantined: u64,
    /// Whether the worker wound down on a cancellation rather than
    /// completing its shard.
    pub cancelled: bool,
    /// The worker's peak resident set size, in KiB (0 if unknown).
    pub peak_rss_kb: u64,
    /// Whether the worker latched a checkpoint write error.
    pub write_error: bool,
}

/// What the coordinator observed of one shard across all its spawns.
#[derive(Debug)]
pub struct ShardRun {
    /// The shard index.
    pub index: u32,
    /// Spawn attempts performed (1 = completed without a respawn).
    pub attempts: u32,
    /// Stats from the final attempt's `Done` frame, if the shard
    /// completed in an orderly way.
    pub done: Option<WorkerStats>,
    /// True when the respawn budget was exhausted (or a fatal protocol
    /// mismatch occurred) without an orderly completion: the shard is
    /// quarantined and its units render as `FAILED SHARD` footers.
    pub failed: bool,
    /// Human-readable description of the last failure, for logs.
    pub last_error: Option<String>,
}

/// Base of the real (slept) exponential respawn backoff:
/// `RESPAWN_BACKOFF_MS << (attempt - 1)`, capped at
/// [`RESPAWN_BACKOFF_CAP_MS`]. Unlike the sweep engine's *virtual* retry
/// backoff, this one really waits — a worker that died of a transient
/// resource spike deserves a breather, and coordinator wall-clock never
/// feeds experiment output.
pub const RESPAWN_BACKOFF_MS: u64 = 50;

/// Upper bound on one respawn backoff sleep.
pub const RESPAWN_BACKOFF_CAP_MS: u64 = 2_000;

/// Shared per-shard progress table: the coordinator folds worker
/// `Progress` frames into the process-global live counters so the
/// existing `--progress` reporter renders an aggregated campaign view.
struct ProgressTable {
    per_shard: Mutex<Vec<pud_observe::live::LiveSnapshot>>,
    up: AtomicU32,
    total: u32,
}

impl ProgressTable {
    fn new(count: u32) -> ProgressTable {
        ProgressTable {
            per_shard: Mutex::new(vec![
                pud_observe::live::LiveSnapshot::default();
                count as usize
            ]),
            up: AtomicU32::new(0),
            total: count,
        }
    }

    fn worker_started(&self) {
        self.up.fetch_add(1, Ordering::SeqCst);
        self.publish_workers();
    }

    fn worker_stopped(&self) {
        self.up.fetch_sub(1, Ordering::SeqCst);
        self.publish_workers();
    }

    fn publish_workers(&self) {
        pud_observe::live::set_workers(
            u64::from(self.up.load(Ordering::SeqCst)),
            u64::from(self.total),
        );
    }

    fn update(&self, index: u32, snap: pud_observe::live::LiveSnapshot) {
        let mut rows = self.per_shard.lock().unwrap_or_else(|e| e.into_inner());
        rows[index as usize] = snap;
        let mut sum = pud_observe::live::LiveSnapshot::default();
        for row in rows.iter() {
            sum.commands += row.commands;
            sum.items_done += row.items_done;
            sum.items_total += row.items_total;
            sum.retries += row.retries;
            sum.quarantined += row.quarantined;
            sum.units_done += row.units_done;
        }
        drop(rows);
        pud_observe::live::overwrite(&sum);
        self.publish_workers();
    }
}

/// Runs every shard's worker process to completion (or respawn
/// exhaustion), one supervising thread per shard.
///
/// `spawn(index, attempt)` starts the worker process for one attempt —
/// its stdout **must** be piped ([`std::process::Stdio::piped`]); the
/// supervisor owns the read side and drives the [`super::wire`] protocol.
/// A worker whose stream ends without a `Done` frame (crash, kill,
/// injected abort), whose frames are truncated, or whose exit status is a
/// failure is respawned after an exponential backoff, up to
/// `max_respawns` times; the respawned process resumes from its shard
/// checkpoint. A `Hello` frame carrying the wrong shard index or a
/// fingerprint other than `fingerprint` is a *fatal* mismatch — respawning
/// a misconfigured worker cannot fix it.
///
/// `heartbeat` is the liveness watchdog window: a worker that shows no
/// *evidence of progress* for that long is presumed hung, SIGKILLed, and
/// respawned through the same budget as a crashed one. Evidence means a
/// `Hello`, a `Done`, or a `Progress` frame whose counters *changed* —
/// workers sample their live counters on an independent thread, so a
/// wedged executor still emits frames; only moving counters prove the
/// worker is alive. Pass a very large duration to disable the watchdog.
///
/// `log(index, message)` receives one line per noteworthy supervision
/// event (worker lost, hung, respawning, quarantined).
pub fn run_workers(
    count: u32,
    max_respawns: u32,
    fingerprint: u64,
    heartbeat: std::time::Duration,
    spawn: impl Fn(u32, u32) -> std::io::Result<std::process::Child> + Sync,
    log: impl Fn(u32, &str) + Sync,
) -> Vec<ShardRun> {
    assert!(count > 0);
    let progress = ProgressTable::new(count);
    progress.publish_workers();
    let mut runs: Vec<Option<ShardRun>> = (0..count).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (index, out) in runs.iter_mut().enumerate() {
            let (spawn, log, progress) = (&spawn, &log, &progress);
            scope.spawn(move || {
                *out = Some(supervise_shard(
                    index as u32,
                    max_respawns,
                    fingerprint,
                    heartbeat,
                    spawn,
                    log,
                    progress,
                ));
            });
        }
    });
    pud_observe::live::set_workers(0, 0);
    runs.into_iter()
        .map(|r| r.expect("every shard supervised"))
        .collect()
}

/// One attempt's verdict, from the worker's frame stream and exit status.
enum AttemptEnd {
    /// Orderly completion: `Done` frame seen, clean EOF, zero exit.
    Done(WorkerStats),
    /// The worker died or misbehaved; retrying may help.
    Lost(String),
    /// The worker is misconfigured (wrong shard / fingerprint); retrying
    /// cannot help.
    Fatal(String),
}

fn watch_attempt(
    index: u32,
    fingerprint: u64,
    heartbeat: std::time::Duration,
    child: &mut std::process::Child,
    progress: &ProgressTable,
) -> AttemptEnd {
    let Some(stdout) = child.stdout.take() else {
        let _ = child.kill();
        let _ = child.wait();
        return AttemptEnd::Fatal("worker spawned without a piped stdout".to_string());
    };
    let stream = FrameStream::spawn(stdout);
    let mut done: Option<WorkerStats> = None;
    let mut hello_seen = false;
    // The watchdog resets only on *evidence of progress*: Hello, Done, or
    // a Progress frame whose counters moved. A wedged worker's sampler
    // thread keeps emitting identical Progress frames every 200 ms — mere
    // frame arrival proves the sampler is alive, not the executor.
    let mut last_counters: Option<(u64, u64, u64, u64, u64, u64)> = None;
    let mut last_evidence = std::time::Instant::now();
    let stream_failure: Option<AttemptEnd> = loop {
        let Some(window) = heartbeat.checked_sub(last_evidence.elapsed()) else {
            let _ = child.kill();
            break Some(AttemptEnd::Lost(format!(
                "no heartbeat for {:.1}s: worker presumed hung, killed",
                heartbeat.as_secs_f64()
            )));
        };
        match stream.next_within(window) {
            None => continue, // silence so far; the checked_sub decides
            Some(Heartbeat::Frame(Frame::Hello {
                shard,
                count: _,
                fingerprint: fp,
                target: _,
                attempt: _,
            })) => {
                if shard != index {
                    break Some(AttemptEnd::Fatal(format!(
                        "worker announced shard {shard}, expected {index}"
                    )));
                }
                if fp != fingerprint {
                    break Some(AttemptEnd::Fatal(format!(
                        "worker fingerprint {fp:#x} does not match campaign {fingerprint:#x}"
                    )));
                }
                hello_seen = true;
                last_evidence = std::time::Instant::now();
            }
            Some(Heartbeat::Frame(Frame::Progress {
                commands,
                items_done,
                items_total,
                retries,
                quarantined,
                units_done,
            })) => {
                let counters = (
                    commands,
                    items_done,
                    items_total,
                    retries,
                    quarantined,
                    units_done,
                );
                if last_counters != Some(counters) {
                    last_counters = Some(counters);
                    last_evidence = std::time::Instant::now();
                }
                progress.update(
                    index,
                    pud_observe::live::LiveSnapshot {
                        commands,
                        items_done,
                        items_total,
                        retries,
                        quarantined,
                        units_done,
                        ..Default::default()
                    },
                );
            }
            Some(Heartbeat::Frame(Frame::Done {
                units_done,
                retries,
                quarantined,
                cancelled,
                peak_rss_kb,
                write_error,
            })) => {
                done = Some(WorkerStats {
                    units_done,
                    retries,
                    quarantined,
                    cancelled,
                    peak_rss_kb,
                    write_error,
                });
                last_evidence = std::time::Instant::now();
            }
            // Serve-protocol frames have no business on a worker stream: a
            // peer that sends them has lost the plot, treat it as lost.
            Some(Heartbeat::Frame(f @ (Frame::Query { .. } | Frame::Response { .. }))) => {
                break Some(AttemptEnd::Lost(format!(
                    "unexpected {} frame on worker stream",
                    match f {
                        Frame::Query { .. } => "query",
                        _ => "response",
                    }
                )));
            }
            Some(Heartbeat::Eof) => break None,
            Some(Heartbeat::Err(WireError::Truncated)) => {
                break Some(AttemptEnd::Lost("stream truncated mid-frame".to_string()))
            }
            Some(Heartbeat::Err(e)) => break Some(AttemptEnd::Lost(e.to_string())),
        }
    };
    let status = child.wait();
    if let Some(end) = stream_failure {
        // Drain the corpse before reporting; its status is secondary to
        // the stream-level diagnosis.
        return end;
    }
    match status {
        Ok(s) if s.success() => match (hello_seen, done) {
            (true, Some(stats)) => AttemptEnd::Done(stats),
            (false, _) => AttemptEnd::Fatal("worker never sent Hello".to_string()),
            (true, None) => AttemptEnd::Lost("worker exited 0 without a Done frame".to_string()),
        },
        Ok(s) => AttemptEnd::Lost(format!("worker exited with {s}")),
        Err(e) => AttemptEnd::Lost(format!("wait failed: {e}")),
    }
}

fn supervise_shard(
    index: u32,
    max_respawns: u32,
    fingerprint: u64,
    heartbeat: std::time::Duration,
    spawn: &(impl Fn(u32, u32) -> std::io::Result<std::process::Child> + Sync),
    log: &(impl Fn(u32, &str) + Sync),
    progress: &ProgressTable,
) -> ShardRun {
    let mut last_error = None;
    let mut attempts = 0;
    for attempt in 0..=max_respawns {
        if supervisor::is_cancelled().is_some() {
            // A cancelled campaign must wind down, not respawn into the
            // cancellation; completed units are safe in the shard
            // checkpoint and the replay re-measures the rest next run.
            break;
        }
        if attempt > 0 {
            let backoff = (RESPAWN_BACKOFF_MS << (attempt - 1).min(16)).min(RESPAWN_BACKOFF_CAP_MS);
            std::thread::sleep(std::time::Duration::from_millis(backoff));
            log(
                index,
                &format!("respawning from shard checkpoint (attempt {attempt}, after {backoff}ms backoff)"),
            );
        }
        attempts = attempt + 1;
        let mut child = match spawn(index, attempt) {
            Ok(child) => child,
            Err(e) => {
                last_error = Some(format!("spawn failed: {e}"));
                log(index, last_error.as_deref().unwrap_or_default());
                continue;
            }
        };
        progress.worker_started();
        let end = watch_attempt(index, fingerprint, heartbeat, &mut child, progress);
        progress.worker_stopped();
        match end {
            AttemptEnd::Done(stats) => {
                return ShardRun {
                    index,
                    attempts,
                    done: Some(stats),
                    failed: false,
                    last_error,
                }
            }
            AttemptEnd::Lost(error) => {
                log(index, &format!("worker lost: {error}"));
                last_error = Some(error);
            }
            AttemptEnd::Fatal(error) => {
                log(index, &format!("fatal worker mismatch: {error}"));
                return ShardRun {
                    index,
                    attempts,
                    done: None,
                    failed: true,
                    last_error: Some(error),
                };
            }
        }
    }
    log(
        index,
        &format!("quarantined after {attempts} attempt(s): respawn budget exhausted"),
    );
    ShardRun {
        index,
        attempts,
        done: None,
        failed: true,
        last_error,
    }
}

/// Why a shard-checkpoint merge failed.
#[derive(Debug)]
pub enum MergeError {
    /// A shard file could not be opened or verified (wrong fingerprint,
    /// wrong chip range, foreign schema version, corruption).
    Checkpoint(CheckpointError),
    /// Two inputs carry *different* data for the same `(stage, chip)` row
    /// — a topology bug, never silently resolved.
    Conflict {
        /// The stage of the conflicting row.
        stage: String,
        /// The chip of the conflicting row.
        chip: String,
    },
    /// Filesystem failure writing the merged file.
    Io(std::io::Error),
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::Checkpoint(e) => write!(f, "shard merge: {e}"),
            MergeError::Conflict { stage, chip } => write!(
                f,
                "shard merge: conflicting rows for stage {stage} chip {chip} — \
                 shard files disagree; delete the stale shard checkpoints"
            ),
            MergeError::Io(e) => write!(f, "shard merge i/o error: {e}"),
        }
    }
}

impl std::error::Error for MergeError {}

impl From<CheckpointError> for MergeError {
    fn from(e: CheckpointError) -> MergeError {
        MergeError::Checkpoint(e)
    }
}

impl From<std::io::Error> for MergeError {
    fn from(e: std::io::Error) -> MergeError {
        MergeError::Io(e)
    }
}

/// What a successful shard merge produced.
#[derive(Debug, Default)]
pub struct MergeReport {
    /// Distinct `(stage, chip)` rows in the merged file.
    pub rows: usize,
    /// Salvage performed while opening damaged input files (torn tails,
    /// CRC failures): every intact prefix was merged, the reports say what
    /// was dropped. Dropped units simply re-measure in the replay.
    pub salvaged: Vec<SalvageReport>,
}

/// Merges the shard checkpoint slices of `shards` (their indices) into the
/// whole-campaign checkpoint at `base`, deterministically.
///
/// Every shard file's header is verified against `header` extended with
/// that shard's [`ShardSlot`] (campaign fingerprint *and* chip range must
/// match; a foreign schema version is a typed error) before any row is
/// trusted; damaged record streams salvage their intact prefix (reported
/// in the [`MergeReport`]). Rows already present in `base` (an earlier
/// merge, or a single-process prefix of the campaign) are kept; a row
/// appearing twice with identical data collapses; differing data for the
/// same key is a [`MergeError::Conflict`]. The merged file is rewritten
/// from scratch in sorted `(stage, chip)` order via a temp-file write +
/// `fsync` + rename + directory `fsync`, so its bytes are a pure function
/// of the row set — independent of shard count, completion order, and
/// respawn history — and a kill or power cut mid-merge leaves either the
/// old file or the new one, never a torn hybrid.
pub fn merge_shards(
    base: &Path,
    header: &CheckpointHeader,
    shards: &[u32],
    count: u32,
    fleet_len: usize,
) -> Result<MergeReport, MergeError> {
    assert!(header.shard.is_none(), "base header must be unsharded");
    let mut rows: std::collections::BTreeMap<(String, String), String> =
        std::collections::BTreeMap::new();
    let mut salvaged: Vec<SalvageReport> = Vec::new();
    let mut fold = |store: &CheckpointStore| -> Result<(), MergeError> {
        if let Some(report) = store.salvage() {
            salvaged.push(report.clone());
        }
        for (stage, chip, data) in store.sorted_rows() {
            let rendered = data.render();
            match rows.entry((stage.to_string(), chip.to_string())) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(rendered);
                }
                std::collections::btree_map::Entry::Occupied(slot) => {
                    if *slot.get() != rendered {
                        return Err(MergeError::Conflict {
                            stage: stage.to_string(),
                            chip: chip.to_string(),
                        });
                    }
                }
            }
        }
        Ok(())
    };
    if base.exists() {
        fold(&CheckpointStore::open(base, header.clone())?)?;
    }
    for &index in shards {
        let mut shard_header = header.clone();
        shard_header.shard = Some(slot(index, count, fleet_len));
        let path = shard_path(base, index, count);
        fold(&CheckpointStore::open(&path, shard_header)?)?;
    }
    let mut content = format!("{}\n", header.render());
    for ((stage, chip), data) in &rows {
        content.push_str(&frame_record(
            &pud_observe::json::JsonObject::new()
                .str("stage", stage)
                .str("chip", chip)
                .raw("data", data)
                .finish(),
        ));
        content.push('\n');
    }
    let tmp = {
        let mut name = base.as_os_str().to_os_string();
        name.push(".merge-tmp");
        PathBuf::from(name)
    };
    {
        use std::io::Write as _;
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(content.as_bytes())?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, base)?;
    sync_parent_dir(base)?;
    Ok(MergeReport {
        rows: rows.len(),
        salvaged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_total_contiguous_and_consistent() {
        for &(n, count) in &[
            (14usize, 1u32),
            (14, 2),
            (14, 4),
            (14, 14),
            (316, 4),
            (5, 8),
            (1, 3),
        ] {
            let mut seen = 0usize;
            for w in 0..count {
                let (lo, hi) = shard_range(w, n, count);
                assert!(lo <= hi && hi <= n, "n={n} count={count} w={w}");
                for i in lo..hi {
                    assert_eq!(owner_of(i, n, count), w, "n={n} count={count} i={i}");
                }
                seen += hi - lo;
            }
            assert_eq!(seen, n, "partition covers all items: n={n} count={count}");
            // Balanced: widths differ by at most one.
            let widths: Vec<usize> = (0..count)
                .map(|w| {
                    let (lo, hi) = shard_range(w, n, count);
                    hi - lo
                })
                .collect();
            let (min, max) = (widths.iter().min().unwrap(), widths.iter().max().unwrap());
            assert!(max - min <= 1, "n={n} count={count} widths={widths:?}");
        }
    }

    #[test]
    fn decide_routes_by_owner() {
        let worker = ShardMode::Worker { index: 1, count: 2 };
        assert_eq!(
            decide(&worker, 0, 14),
            Some(SkipReason::OutOfShard { shard: 0 })
        );
        assert_eq!(decide(&worker, 13, 14), None);
        let replay = ShardMode::Replay {
            count: 4,
            failed: vec![2],
        };
        assert_eq!(decide(&replay, 0, 14), None);
        let (lo, _) = shard_range(2, 14, 4);
        assert_eq!(
            decide(&replay, lo, 14),
            Some(SkipReason::FailedShard { shard: 2 })
        );
    }

    #[test]
    fn skip_for_is_inert_without_an_installed_mode() {
        for i in 0..14 {
            assert_eq!(skip_for(i, 14), None);
        }
        assert_eq!(skip_for(0, 0), None, "empty sweeps never skip");
    }

    #[test]
    fn install_guards_nest_and_restore() {
        // Only harmless single-shard modes are installed here: shard 0 of
        // 1 owns every unit, so concurrently running sweeps in this test
        // binary are unaffected (mirrors the supervisor's test policy).
        let outer = install_worker(0, 1);
        assert_eq!(skip_for(3, 14), None, "sole shard owns everything");
        {
            let _inner = install_replay(1, vec![]);
            assert_eq!(skip_for(3, 14), None, "no failed shards, no skips");
        }
        assert_eq!(skip_for(5, 14), None);
        drop(outer);
        assert!(!ACTIVE.load(Ordering::SeqCst));
    }

    #[test]
    fn shard_paths_name_the_slice() {
        let p = shard_path(Path::new("/tmp/ckpt.jsonl"), 2, 4);
        assert_eq!(p, PathBuf::from("/tmp/ckpt.jsonl.shard2of4"));
    }

    fn header(fingerprint: u64) -> CheckpointHeader {
        CheckpointHeader {
            target: "table2".to_string(),
            scale: "quick".to_string(),
            fingerprint,
            fault_seed: None,
            shard: None,
        }
    }

    fn temp_base(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pud-shard-{name}-{}", std::process::id()));
        p
    }

    fn clean(base: &Path, count: u32) {
        let _ = std::fs::remove_file(base);
        for w in 0..count {
            let _ = std::fs::remove_file(shard_path(base, w, count));
        }
    }

    fn write_shard(
        base: &Path,
        index: u32,
        count: u32,
        fleet_len: usize,
        rows: &[(&str, &str, &str)],
    ) {
        let mut h = header(7);
        h.shard = Some(slot(index, count, fleet_len));
        let store = CheckpointStore::open(&shard_path(base, index, count), h).expect("shard file");
        for (stage, chip, data) in rows {
            store.record(stage, chip, data);
        }
    }

    #[test]
    fn merge_is_deterministic_and_order_free() {
        let base = temp_base("merge");
        clean(&base, 2);
        write_shard(&base, 0, 2, 14, &[("s0", "A#0", "1"), ("s0", "B#0", "2")]);
        write_shard(&base, 1, 2, 14, &[("s0", "C#0", "3"), ("s1", "A#0", "4")]);
        let report = merge_shards(&base, &header(7), &[0, 1], 2, 14).expect("merge");
        assert_eq!(report.rows, 4);
        assert!(report.salvaged.is_empty());
        let bytes_ab = std::fs::read(&base).expect("merged");
        // Re-merging with the shard order reversed (and the merged base
        // already populated) is byte-identical.
        let report = merge_shards(&base, &header(7), &[1, 0], 2, 14).expect("re-merge");
        assert_eq!(report.rows, 4);
        assert_eq!(std::fs::read(&base).expect("merged"), bytes_ab);
        // The merged file reopens as a plain whole-campaign checkpoint.
        let store = CheckpointStore::open(&base, header(7)).expect("reopen");
        assert_eq!(store.recovered(), 4);
        assert!(store.lookup("s1", "A#0").is_some());
        clean(&base, 2);
    }

    #[test]
    fn merge_rejects_a_foreign_fingerprint_shard() {
        let base = temp_base("merge-fp");
        clean(&base, 2);
        write_shard(&base, 0, 2, 14, &[("s0", "A#0", "1")]);
        // Shard 1 written under a different campaign fingerprint.
        let mut alien = header(8);
        alien.shard = Some(slot(1, 2, 14));
        CheckpointStore::open(&shard_path(&base, 1, 2), alien).expect("alien shard");
        let err = merge_shards(&base, &header(7), &[0, 1], 2, 14).expect_err("must reject");
        assert!(
            matches!(
                err,
                MergeError::Checkpoint(CheckpointError::HeaderMismatch { .. })
            ),
            "{err}"
        );
        clean(&base, 2);
    }

    #[test]
    fn merge_rejects_a_wrong_chip_range_shard() {
        let base = temp_base("merge-range");
        clean(&base, 2);
        // The file on disk claims shard 0's range but sits at shard 1's
        // path — a topology change between runs.
        let mut h = header(7);
        h.shard = Some(slot(0, 2, 14));
        CheckpointStore::open(&shard_path(&base, 1, 2), h).expect("mislabeled shard");
        write_shard(&base, 0, 2, 14, &[("s0", "A#0", "1")]);
        let err = merge_shards(&base, &header(7), &[0, 1], 2, 14).expect_err("must reject");
        assert!(
            matches!(
                err,
                MergeError::Checkpoint(CheckpointError::HeaderMismatch { .. })
            ),
            "{err}"
        );
        clean(&base, 2);
    }

    #[test]
    fn merge_rejects_a_foreign_schema_version() {
        let base = temp_base("merge-ver");
        clean(&base, 1);
        let path = shard_path(&base, 0, 1);
        let mut h = header(7);
        h.shard = Some(slot(0, 1, 14));
        CheckpointStore::open(&path, h).expect("create");
        let content = std::fs::read_to_string(&path)
            .expect("read")
            .replace("\"version\":2", "\"version\":999");
        std::fs::write(&path, content).expect("rewrite");
        let err = merge_shards(&base, &header(7), &[0], 1, 14).expect_err("must reject");
        assert!(
            matches!(
                err,
                MergeError::Checkpoint(CheckpointError::Version { found: 999, .. })
            ),
            "{err}"
        );
        clean(&base, 1);
    }

    #[test]
    fn merge_conflicting_rows_is_a_typed_error() {
        let base = temp_base("merge-conflict");
        clean(&base, 2);
        write_shard(&base, 0, 2, 14, &[("s0", "A#0", "1")]);
        write_shard(&base, 1, 2, 14, &[("s0", "A#0", "2")]);
        let err = merge_shards(&base, &header(7), &[0, 1], 2, 14).expect_err("must reject");
        assert!(matches!(err, MergeError::Conflict { .. }), "{err}");
        clean(&base, 2);
    }

    #[test]
    fn merge_tolerates_duplicate_identical_rows() {
        let base = temp_base("merge-dup");
        clean(&base, 2);
        write_shard(&base, 0, 2, 14, &[("s0", "A#0", "1")]);
        write_shard(&base, 1, 2, 14, &[("s0", "A#0", "1"), ("s0", "B#0", "2")]);
        let report = merge_shards(&base, &header(7), &[0, 1], 2, 14).expect("merge");
        assert_eq!(report.rows, 2);
        clean(&base, 2);
    }

    #[test]
    fn merge_io_failure_is_a_typed_error() {
        // Point the base *inside* a regular file: creating the merge temp
        // file fails with ENOTDIR before any shard is read.
        let blocker = temp_base("merge-io-blocker");
        std::fs::write(&blocker, "not a directory").expect("blocker");
        let base = blocker.join("ckpt.jsonl");
        let err = merge_shards(&base, &header(7), &[], 1, 14).expect_err("must fail");
        assert!(matches!(err, MergeError::Io(_)), "{err}");
        assert!(err.to_string().contains("i/o"), "{err}");
        let _ = std::fs::remove_file(&blocker);
    }

    #[test]
    fn merge_salvages_a_damaged_shard_and_reports_it() {
        let base = temp_base("merge-salvage");
        clean(&base, 2);
        write_shard(&base, 0, 2, 14, &[("s0", "A#0", "1"), ("s0", "B#0", "2")]);
        write_shard(&base, 1, 2, 14, &[("s0", "C#0", "3")]);
        // Tear shard 0's last record in half, as a kill -9 mid-write would.
        let path = shard_path(&base, 0, 2);
        let content = std::fs::read_to_string(&path).expect("read");
        std::fs::write(&path, &content[..content.len() - 9]).expect("tear");
        let report = merge_shards(&base, &header(7), &[0, 1], 2, 14).expect("salvage, not fail");
        assert_eq!(report.rows, 2, "intact rows from both shards");
        assert_eq!(report.salvaged.len(), 1, "the torn shard is reported");
        assert_eq!(report.salvaged[0].path, path);
        // The merged base holds exactly the surviving rows.
        let store = CheckpointStore::open(&base, header(7)).expect("reopen merged");
        assert!(store.lookup("s0", "A#0").is_some());
        assert!(store.lookup("s0", "B#0").is_none(), "torn row not merged");
        assert!(store.lookup("s0", "C#0").is_some());
        clean(&base, 2);
    }

    #[test]
    fn supervising_a_hopeless_worker_exhausts_respawns() {
        // `false` exits nonzero without ever speaking the protocol: every
        // attempt is Lost (clean EOF, no Hello — but the nonzero exit is
        // diagnosed first), the budget runs out, the shard is quarantined.
        let mut logged = Vec::new();
        {
            let log = Mutex::new(&mut logged);
            let runs = run_workers(
                1,
                2,
                0xF00D,
                std::time::Duration::from_secs(60),
                |_, _| {
                    std::process::Command::new("false")
                        .stdout(std::process::Stdio::piped())
                        .spawn()
                },
                |shard, msg| log.lock().unwrap().push(format!("[{shard}] {msg}")),
            );
            assert_eq!(runs.len(), 1);
            assert!(runs[0].failed);
            assert_eq!(runs[0].attempts, 3, "initial spawn + 2 respawns");
            assert!(runs[0].done.is_none());
            assert!(runs[0].last_error.is_some());
        }
        assert!(
            logged.iter().any(|l| l.contains("respawning")),
            "{logged:?}"
        );
        assert!(
            logged
                .iter()
                .any(|l| l.contains("respawn budget exhausted")),
            "{logged:?}"
        );
    }

    #[test]
    fn supervising_a_frame_speaking_worker_succeeds() {
        // `cat <frames>` plays back a pre-recorded orderly session: Hello,
        // one Progress, Done — the coordinator must accept it first try.
        let frames = temp_base("frames");
        let mut buf = Vec::new();
        Frame::Hello {
            shard: 0,
            count: 1,
            fingerprint: 0xF00D,
            target: "table2".into(),
            attempt: 0,
        }
        .write_to(&mut buf)
        .unwrap();
        Frame::Progress {
            commands: 10,
            items_done: 1,
            items_total: 2,
            retries: 0,
            quarantined: 0,
            units_done: 1,
        }
        .write_to(&mut buf)
        .unwrap();
        Frame::Done {
            units_done: 2,
            retries: 1,
            quarantined: 0,
            cancelled: false,
            peak_rss_kb: 4096,
            write_error: false,
        }
        .write_to(&mut buf)
        .unwrap();
        std::fs::write(&frames, &buf).expect("record session");
        let runs = run_workers(
            1,
            0,
            0xF00D,
            std::time::Duration::from_secs(60),
            |_, _| {
                std::process::Command::new("cat")
                    .arg(&frames)
                    .stdout(std::process::Stdio::piped())
                    .spawn()
            },
            |_, _| {},
        );
        assert!(!runs[0].failed);
        assert_eq!(runs[0].attempts, 1);
        let stats = runs[0].done.expect("orderly completion");
        assert_eq!(stats.units_done, 2);
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.peak_rss_kb, 4096);
        let _ = std::fs::remove_file(&frames);
    }

    #[test]
    fn a_hung_worker_is_killed_by_the_watchdog_and_quarantined() {
        // The worker says Hello, then wedges: no further frames, no exit.
        // With a short heartbeat the watchdog must SIGKILL it instead of
        // waiting out the full sleep, and the shard is quarantined once
        // the (zero) respawn budget is spent.
        let frames = temp_base("hang-hello");
        let mut buf = Vec::new();
        Frame::Hello {
            shard: 0,
            count: 1,
            fingerprint: 0xF00D,
            target: "table2".into(),
            attempt: 0,
        }
        .write_to(&mut buf)
        .unwrap();
        std::fs::write(&frames, &buf).expect("record hello");
        let mut logged = Vec::new();
        let started = std::time::Instant::now();
        {
            let log = Mutex::new(&mut logged);
            let runs = run_workers(
                1,
                0,
                0xF00D,
                std::time::Duration::from_millis(300),
                |_, _| {
                    std::process::Command::new("sh")
                        .arg("-c")
                        .arg(format!("cat {}; exec sleep 600", frames.display()))
                        .stdout(std::process::Stdio::piped())
                        .spawn()
                },
                |shard, msg| log.lock().unwrap().push(format!("[{shard}] {msg}")),
            );
            assert_eq!(runs.len(), 1);
            assert!(runs[0].failed, "hung shard must be quarantined");
            assert!(runs[0].done.is_none());
        }
        assert!(
            started.elapsed() < std::time::Duration::from_secs(30),
            "watchdog must not wait out the worker's sleep"
        );
        assert!(
            logged.iter().any(|l| l.contains("presumed hung")),
            "{logged:?}"
        );
        let _ = std::fs::remove_file(&frames);
    }

    #[test]
    fn a_fingerprint_mismatch_is_fatal_not_respawned() {
        let frames = temp_base("frames-fatal");
        let mut buf = Vec::new();
        Frame::Hello {
            shard: 0,
            count: 1,
            fingerprint: 0xBAD,
            target: "table2".into(),
            attempt: 0,
        }
        .write_to(&mut buf)
        .unwrap();
        std::fs::write(&frames, &buf).expect("record session");
        let runs = run_workers(
            1,
            5,
            0xF00D,
            std::time::Duration::from_secs(60),
            |_, _| {
                std::process::Command::new("cat")
                    .arg(&frames)
                    .stdout(std::process::Stdio::piped())
                    .spawn()
            },
            |_, _| {},
        );
        assert!(runs[0].failed);
        assert_eq!(runs[0].attempts, 1, "fatal mismatches never respawn");
        assert!(runs[0]
            .last_error
            .as_deref()
            .unwrap()
            .contains("fingerprint"));
        let _ = std::fs::remove_file(&frames);
    }
}
