//! DDR5 timing and system configuration for the mitigation evaluation.
//!
//! The §8.2 evaluation models a 4.2 GHz five-core system with dual-rank
//! DDR5 DRAM and an FR-FCFS+Cap-4 scheduler (paper footnote 9). The
//! simulator advances in 1 ns ticks, which is coarse enough to be fast and
//! fine enough to resolve every DDR5 timing constraint that matters for
//! the mitigation overhead shape.

/// DDR5 timing parameters in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramTiming {
    /// ACT → column command.
    pub t_rcd: u64,
    /// PRE → ACT.
    pub t_rp: u64,
    /// ACT → PRE.
    pub t_ras: u64,
    /// ACT → ACT on the same bank (`t_RC`, the paper quotes 46–50 ns).
    pub t_rc: u64,
    /// Column command → data burst complete.
    pub t_cl: u64,
    /// Back-to-back column commands on an open row.
    pub t_ccd: u64,
    /// Refresh command duration.
    pub t_rfc: u64,
    /// Refresh interval (DDR5: 3.9 µs).
    pub t_refi: u64,
    /// RFM (refresh-management) command duration.
    pub t_rfm: u64,
    /// Duration of one SiMRA operation (ACT‑PRE‑ACT + restore + PRE).
    pub t_simra_op: u64,
    /// Duration of one CoMRA operation (two back-to-back activations).
    pub t_comra_op: u64,
}

impl Default for DramTiming {
    fn default() -> DramTiming {
        DramTiming {
            t_rcd: 15,
            t_rp: 15,
            t_ras: 32,
            t_rc: 47,
            t_cl: 15,
            t_ccd: 3,
            t_rfc: 295,
            t_refi: 3900,
            t_rfm: 350,
            t_simra_op: 47,
            t_comra_op: 95,
        }
    }
}

/// System configuration (paper footnote 9: 4.2 GHz five-core, dual-rank
/// DDR5, FR-FCFS+Cap of 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// Number of cores (including the PuD-issuing synthetic workload).
    pub cores: usize,
    /// Number of banks in the memory system.
    pub banks: usize,
    /// Rows per bank (for PRAC counter tables).
    pub rows_per_bank: u32,
    /// FR-FCFS row-hit cap.
    pub cap: u32,
    /// Peak instructions per nanosecond per core (4.2 GHz × IPC 1).
    pub ipc_per_ns: f64,
    /// Maximum outstanding misses per core (memory-level parallelism).
    pub mlp: usize,
    /// Maximum requests buffered in the controller queue.
    pub queue_depth: usize,
    /// Distinct rows in each core's working set (cache-resident hot rows
    /// map to a bounded set of DRAM rows).
    pub working_set_rows: u32,
    /// Banks each core's working set spans.
    pub working_set_banks: usize,
}

impl Default for SystemConfig {
    fn default() -> SystemConfig {
        SystemConfig {
            cores: 5,
            banks: 32,
            rows_per_bank: 4096,
            cap: 4,
            ipc_per_ns: 4.2,
            mlp: 4,
            queue_depth: 32,
            working_set_rows: 2,
            working_set_banks: 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        let t = DramTiming::default();
        assert!(t.t_rc >= t.t_ras + t.t_rp);
        assert!(t.t_rcd < t.t_rc);
        assert!((46..=50).contains(&t.t_rc), "paper quotes 46-50 ns tRC");
        let c = SystemConfig::default();
        assert_eq!(c.cores, 5);
        assert_eq!(c.cap, 4);
    }
}
