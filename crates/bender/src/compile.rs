//! Compile-then-replay fast path: lowers a [`TestProgram`] tree into a
//! flat, branch-light op buffer the executor replays without re-walking
//! the tree.
//!
//! The lowering pass resolves every logical row address to its physical
//! address once (the interpreter calls the row-decoder scramble on every
//! ACT of every loop iteration), keeps counted loops as counted blocks
//! with their per-iteration aggregates (duration, ACT count, whether the
//! body is bulk-replayable) precomputed, and stores the program-level
//! totals the run-time checks need (duration for the refresh-window
//! bound, command count for the fault clock). Replaying a compiled
//! program drives the exact same per-command semantics as the
//! interpreter — the same trace events, the same metrics and work
//! counters, the same warm-up-then-bulk-replay loop batching — so stdout,
//! traces, and checkpoints are byte-identical across the two paths; the
//! speed comes from the pre-resolved addresses and from the executor
//! pairing replay with the `pud-disturb` batching caches
//! ([`pud_disturb::BatchState`]).
//!
//! What does *not* compile (the executor falls back to the interpreter):
//! programs nested deeper than [`MAX_NEST_DEPTH`] loops, and programs
//! referencing banks or rows outside the chip's geometry (those must take
//! the interpreter path so its validation reports the same typed error it
//! always has).

use pud_dram::{BankId, Chip, DataPattern, Picos, RowAddr};

use crate::command::DramCommand;
use crate::program::{Step, TestProgram};

/// Loop-nesting depth beyond which compilation bails out (a pathological
/// program shape no kernel in `ops` produces; the interpreter handles it).
pub const MAX_NEST_DEPTH: u32 = 16;

/// One DDR4 command with its row address pre-resolved through the chip's
/// row-decoder scramble. Mirrors [`DramCommand`] except that `Act` carries
/// both the logical address (what the bus — and thus the TRR observer and
/// the SiMRA group decode — sees) and the physical address (what the
/// device model touches).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum ResolvedCmd {
    /// Activate: logical address for the observer, physical for the model.
    Act {
        bank: BankId,
        logical: RowAddr,
        phys: RowAddr,
    },
    /// Precharge one bank.
    Pre { bank: BankId },
    /// Precharge all banks.
    PreAll,
    /// Read the open row.
    Rd { bank: BankId },
    /// Overwrite the open row(s).
    Wr { bank: BankId, pattern: DataPattern },
    /// Refresh.
    Ref,
    /// Pure delay.
    Nop,
}

/// One slot of the flat op buffer.
///
/// A `Block` header is immediately followed by the `len` slots of its
/// body (nested blocks included), so replay walks the buffer with an
/// index and a slice — no tree pointers, no per-iteration dispatch on
/// step shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum CompiledOp {
    /// A single timed command.
    Cmd {
        cmd: ResolvedCmd,
        delay_after: Picos,
    },
    /// A counted block over the following `len` slots.
    Block {
        /// Iteration count.
        count: u64,
        /// Flat slots occupied by the body (nested blocks included).
        len: u32,
        /// Whether the body qualifies for warm-up-then-bulk replay
        /// (same predicate as the interpreter's `run_loop`).
        batchable: bool,
        /// Wall-clock duration of one body iteration (batchable only).
        body_time: Picos,
        /// ACT commands per body iteration (batchable only).
        body_acts: u64,
    },
}

/// A [`TestProgram`] lowered into a flat op buffer plus the program-level
/// aggregates the executor's run-time checks need.
///
/// Obtained from [`crate::Executor::compile`] (the addresses embed one
/// chip's row mapping, so a compiled program is only valid on executors
/// sharing that mapping and geometry). `Executor::try_run` compiles
/// transparently; hold a `CompiledProgram` yourself only to amortize the
/// lowering across many replays of the same program.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledProgram {
    pub(crate) ops: Vec<CompiledOp>,
    duration: Picos,
    act_count: u64,
    cmd_count: u64,
}

impl CompiledProgram {
    /// Lowers `program` against `chip`'s geometry and row mapping.
    /// Returns `None` when the program is not compilable (out-of-geometry
    /// references or loops nested deeper than [`MAX_NEST_DEPTH`]) — the
    /// caller falls back to the interpreter, which reports geometry
    /// errors through its usual validation.
    pub(crate) fn compile(program: &TestProgram, chip: &Chip) -> Option<CompiledProgram> {
        let mut ops = Vec::with_capacity(program.steps().len());
        lower(program.steps(), chip, &mut ops, 0)?;
        Some(CompiledProgram {
            ops,
            duration: program.duration(),
            act_count: program.act_count(),
            cmd_count: program.cmd_count(),
        })
    }

    /// Total wall-clock duration of the program.
    pub fn duration(&self) -> Picos {
        self.duration
    }

    /// Total ACT commands the program issues.
    pub fn act_count(&self) -> u64 {
        self.act_count
    }

    /// Total commands (of any kind) the program issues — the unit the
    /// fault-injection clock advances in.
    pub fn cmd_count(&self) -> u64 {
        self.cmd_count
    }

    /// Flat op-buffer slots (commands plus block headers).
    pub fn op_len(&self) -> usize {
        self.ops.len()
    }
}

/// Recursively appends the lowered form of `steps` to `ops`.
fn lower(steps: &[Step], chip: &Chip, ops: &mut Vec<CompiledOp>, depth: u32) -> Option<()> {
    if depth > MAX_NEST_DEPTH {
        return None;
    }
    let geometry = *chip.geometry();
    for step in steps {
        match step {
            Step::Cmd(tc) => {
                let cmd = match tc.cmd {
                    DramCommand::Act { bank, row } => {
                        if bank.0 >= geometry.banks || row.0 >= geometry.rows_per_bank() {
                            return None;
                        }
                        ResolvedCmd::Act {
                            bank,
                            logical: row,
                            phys: chip.to_physical(row),
                        }
                    }
                    DramCommand::Pre { bank } => {
                        if bank.0 >= geometry.banks {
                            return None;
                        }
                        ResolvedCmd::Pre { bank }
                    }
                    DramCommand::Rd { bank } => {
                        if bank.0 >= geometry.banks {
                            return None;
                        }
                        ResolvedCmd::Rd { bank }
                    }
                    DramCommand::Wr { bank, pattern } => {
                        if bank.0 >= geometry.banks {
                            return None;
                        }
                        ResolvedCmd::Wr { bank, pattern }
                    }
                    DramCommand::PreAll => ResolvedCmd::PreAll,
                    DramCommand::Ref => ResolvedCmd::Ref,
                    DramCommand::Nop => ResolvedCmd::Nop,
                };
                ops.push(CompiledOp::Cmd {
                    cmd,
                    delay_after: tc.delay_after,
                });
            }
            Step::Loop { count, body } => {
                // Reserve the header slot, lower the body behind it, then
                // patch the header with the measured flat length and the
                // per-iteration aggregates.
                let header = ops.len();
                ops.push(CompiledOp::Block {
                    count: *count,
                    len: 0,
                    batchable: false,
                    body_time: Picos::ZERO,
                    body_acts: 0,
                });
                lower(body, chip, ops, depth + 1)?;
                let len = u32::try_from(ops.len() - header - 1).ok()?;
                // Same predicate as the interpreter's `run_loop`: every
                // body step is a plain ACT/PRE/PREALL/NOP command (flat
                // form: no nested blocks, no RD/WR/REF slots).
                let batchable = ops[header + 1..].iter().all(|op| {
                    matches!(
                        op,
                        CompiledOp::Cmd {
                            cmd: ResolvedCmd::Act { .. }
                                | ResolvedCmd::Pre { .. }
                                | ResolvedCmd::PreAll
                                | ResolvedCmd::Nop,
                            ..
                        }
                    )
                });
                let (mut body_time, mut body_acts) = (Picos::ZERO, 0u64);
                if batchable {
                    for op in &ops[header + 1..] {
                        if let CompiledOp::Cmd { cmd, delay_after } = op {
                            body_time = body_time.saturating_add(*delay_after);
                            body_acts += matches!(cmd, ResolvedCmd::Act { .. }) as u64;
                        }
                    }
                }
                ops[header] = CompiledOp::Block {
                    count: *count,
                    len,
                    batchable,
                    body_time,
                    body_acts,
                };
            }
        }
    }
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pud_dram::profiles::TESTED_MODULES;
    use pud_dram::ChipGeometry;

    fn chip() -> Chip {
        let p = &TESTED_MODULES[1];
        Chip::new(
            ChipGeometry::scaled_for_tests(),
            p.mapping(),
            p.cell_layout(),
        )
    }

    fn hammer_program(row: u32, count: u64) -> TestProgram {
        let mut p = TestProgram::new();
        p.repeat(count, |b| {
            b.act(BankId(0), RowAddr(row), Picos::from_ns(36.0))
                .pre(BankId(0), Picos::from_ns(15.0));
        });
        p
    }

    #[test]
    fn lowering_preserves_aggregates_and_resolves_rows() {
        let chip = chip();
        let p = hammer_program(10, 1000);
        let cp = CompiledProgram::compile(&p, &chip).expect("compilable");
        assert_eq!(cp.duration(), p.duration());
        assert_eq!(cp.act_count(), p.act_count());
        assert_eq!(cp.cmd_count(), p.cmd_count());
        assert_eq!(cp.op_len(), 3, "one block header + two command slots");
        match cp.ops[0] {
            CompiledOp::Block {
                count,
                len,
                batchable,
                body_acts,
                ..
            } => {
                assert_eq!(count, 1000);
                assert_eq!(len, 2);
                assert!(batchable);
                assert_eq!(body_acts, 1);
            }
            ref other => panic!("expected block header, got {other:?}"),
        }
        match cp.ops[1] {
            CompiledOp::Cmd {
                cmd: ResolvedCmd::Act { logical, phys, .. },
                ..
            } => {
                assert_eq!(logical, RowAddr(10));
                assert_eq!(phys, chip.to_physical(RowAddr(10)));
            }
            ref other => panic!("expected resolved ACT, got {other:?}"),
        }
    }

    #[test]
    fn loops_with_side_effects_are_not_batchable() {
        let chip = chip();
        let mut p = TestProgram::new();
        p.repeat(100, |b| {
            b.act(BankId(0), RowAddr(1), Picos::from_ns(36.0))
                .rd(BankId(0), Picos::from_ns(15.0));
        });
        let cp = CompiledProgram::compile(&p, &chip).expect("compilable");
        assert!(matches!(
            cp.ops[0],
            CompiledOp::Block {
                batchable: false,
                ..
            }
        ));
    }

    #[test]
    fn out_of_geometry_programs_do_not_compile() {
        let chip = chip();
        let mut p = TestProgram::new();
        p.act(BankId(200), RowAddr(0), Picos::from_ns(36.0));
        assert!(CompiledProgram::compile(&p, &chip).is_none());
        let mut p = TestProgram::new();
        p.act(BankId(0), RowAddr(u32::MAX), Picos::from_ns(36.0));
        assert!(CompiledProgram::compile(&p, &chip).is_none());
    }

    #[test]
    fn pathological_nesting_falls_back() {
        let chip = chip();
        fn nest(depth: u32) -> TestProgram {
            let mut p = TestProgram::new();
            if depth == 0 {
                p.wait(Picos::from_ns(1.0));
            } else {
                p.repeat(2, |b| {
                    b.extend(&nest(depth - 1));
                });
            }
            p
        }
        assert!(CompiledProgram::compile(&nest(MAX_NEST_DEPTH), &chip).is_some());
        assert!(CompiledProgram::compile(&nest(MAX_NEST_DEPTH + 2), &chip).is_none());
    }

    #[test]
    fn nested_batchable_inner_loops_keep_their_aggregates() {
        let chip = chip();
        let mut p = TestProgram::new();
        p.repeat(10, |outer| {
            outer.repeat(50, |inner| {
                inner
                    .act(BankId(0), RowAddr(2), Picos::from_ns(36.0))
                    .pre(BankId(0), Picos::from_ns(15.0));
            });
            outer.refresh(Picos::from_ns(350.0));
        });
        let cp = CompiledProgram::compile(&p, &chip).expect("compilable");
        // Outer block: 4 slots (inner header, 2 cmds, REF); not batchable.
        match cp.ops[0] {
            CompiledOp::Block {
                count,
                len,
                batchable,
                ..
            } => {
                assert_eq!(count, 10);
                assert_eq!(len, 4);
                assert!(!batchable);
            }
            ref other => panic!("expected outer block, got {other:?}"),
        }
        assert!(matches!(
            cp.ops[1],
            CompiledOp::Block {
                count: 50,
                len: 2,
                batchable: true,
                ..
            }
        ));
    }
}
