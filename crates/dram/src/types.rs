//! Fundamental value types shared by the whole workspace: manufacturers,
//! chip metadata, addresses, time, temperature, and data patterns.

use std::fmt;

/// DRAM chip manufacturer.
///
/// The paper characterizes chips from the four major DRAM manufacturers
/// (Table 1). Vendor identity drives calibration profiles, row mapping, and
/// cell layout choices throughout the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Manufacturer {
    /// SK Hynix — the only manufacturer whose chips perform SiMRA (§5.3).
    SkHynix,
    /// Micron.
    Micron,
    /// Samsung.
    Samsung,
    /// Nanya.
    Nanya,
}

impl Manufacturer {
    /// All four manufacturers, in the order the paper lists them.
    pub const ALL: [Manufacturer; 4] = [
        Manufacturer::SkHynix,
        Manufacturer::Micron,
        Manufacturer::Samsung,
        Manufacturer::Nanya,
    ];

    /// Whether chips from this manufacturer honour the ACT‑PRE‑ACT sequence
    /// as a simultaneous multiple-row activation.
    ///
    /// The paper (§5.3, footnote 2) observes SiMRA only in SK Hynix chips;
    /// Samsung, Micron, and Nanya chips ignore commands that greatly violate
    /// nominal timings.
    pub fn supports_simra(self) -> bool {
        matches!(self, Manufacturer::SkHynix)
    }
}

impl fmt::Display for Manufacturer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Manufacturer::SkHynix => "SK Hynix",
            Manufacturer::Micron => "Micron",
            Manufacturer::Samsung => "Samsung",
            Manufacturer::Nanya => "Nanya",
        };
        f.write_str(name)
    }
}

/// Die revision letter as printed in Table 1/2 (e.g. `A`, `B`, `C`, `D`, `E`,
/// `F`, `R`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DieRevision(pub char);

impl fmt::Display for DieRevision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// DRAM chip density.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ChipDensity {
    /// 4 Gbit.
    Gb4,
    /// 8 Gbit.
    Gb8,
    /// 16 Gbit.
    Gb16,
}

impl fmt::Display for ChipDensity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ChipDensity::Gb4 => "4Gb",
            ChipDensity::Gb8 => "8Gb",
            ChipDensity::Gb16 => "16Gb",
        };
        f.write_str(s)
    }
}

/// DRAM chip data-bus organization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ChipOrg {
    /// 4-bit wide interface.
    X4,
    /// 8-bit wide interface.
    X8,
    /// 16-bit wide interface.
    X16,
}

impl fmt::Display for ChipOrg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ChipOrg::X4 => "x4",
            ChipOrg::X8 => "x8",
            ChipOrg::X16 => "x16",
        };
        f.write_str(s)
    }
}

/// A duration with picosecond resolution.
///
/// DDR4 test programs express delays such as the violated 7.5 ns PRE→ACT
/// latency of the CoMRA access pattern (Fig. 3c) or the 3 ns delays of the
/// SiMRA ACT‑PRE‑ACT sequence (Fig. 12c). Picosecond integer resolution keeps
/// the type hashable and totally ordered while representing half-nanosecond
/// steps exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Picos(pub u64);

impl Picos {
    /// Zero duration.
    pub const ZERO: Picos = Picos(0);

    /// Creates a duration from (possibly fractional) nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative or not finite.
    pub fn from_ns(ns: f64) -> Picos {
        assert!(ns.is_finite() && ns >= 0.0, "duration must be non-negative");
        Picos((ns * 1000.0).round() as u64)
    }

    /// Creates a duration from microseconds.
    pub fn from_us(us: f64) -> Picos {
        Picos::from_ns(us * 1000.0)
    }

    /// The duration in nanoseconds.
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// The duration in microseconds.
    pub fn as_us(self) -> f64 {
        self.as_ns() / 1000.0
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: Picos) -> Picos {
        Picos(self.0.saturating_add(rhs.0))
    }

    /// Scales the duration by an integer count (saturating).
    pub fn saturating_mul(self, count: u64) -> Picos {
        Picos(self.0.saturating_mul(count))
    }
}

impl std::ops::Add for Picos {
    type Output = Picos;
    fn add(self, rhs: Picos) -> Picos {
        Picos(self.0 + rhs.0)
    }
}

impl std::ops::Sub for Picos {
    type Output = Picos;
    fn sub(self, rhs: Picos) -> Picos {
        Picos(self.0 - rhs.0)
    }
}

impl fmt::Display for Picos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.2}us", self.as_us())
        } else {
            write!(f, "{:.2}ns", self.as_ns())
        }
    }
}

/// DRAM chip temperature in degrees Celsius.
///
/// The paper tests 50 °C, 60 °C, 70 °C, and 80 °C, conducting all other
/// experiments at 80 °C (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Celsius(pub f64);

impl Celsius {
    /// The paper's default experiment temperature (§4.2).
    pub const DEFAULT_TEST: Celsius = Celsius(80.0);

    /// The four temperature levels tested by the paper.
    pub const TESTED: [Celsius; 4] = [Celsius(50.0), Celsius(60.0), Celsius(70.0), Celsius(80.0)];
}

impl fmt::Display for Celsius {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0}C", self.0)
    }
}

/// A repeating one-byte data pattern used to fill aggressor and victim rows.
///
/// The paper uses the four patterns widely used in memory reliability
/// testing: `0x00`, `0xFF`, `0xAA`, and `0x55` (§4.2). Victim rows are
/// initialized with the *negated* aggressor pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DataPattern(pub u8);

impl DataPattern {
    /// All-zeros pattern.
    pub const ZEROS: DataPattern = DataPattern(0x00);
    /// All-ones pattern.
    pub const ONES: DataPattern = DataPattern(0xFF);
    /// Checkerboard pattern `0xAA`.
    pub const CHECKER_AA: DataPattern = DataPattern(0xAA);
    /// Checkerboard pattern `0x55`.
    pub const CHECKER_55: DataPattern = DataPattern(0x55);

    /// The four patterns tested by the paper, in presentation order.
    pub const TESTED: [DataPattern; 4] = [
        DataPattern::ZEROS,
        DataPattern::ONES,
        DataPattern::CHECKER_AA,
        DataPattern::CHECKER_55,
    ];

    /// The bitwise complement of the pattern (victim-row initialization).
    pub fn negated(self) -> DataPattern {
        DataPattern(!self.0)
    }

    /// The bit this pattern stores at column `col`.
    pub fn bit(self, col: u32) -> bool {
        (self.0 >> (col % 8)) & 1 == 1
    }

    /// Whether this is one of the two checkerboard patterns.
    pub fn is_checkerboard(self) -> bool {
        self == DataPattern::CHECKER_AA || self == DataPattern::CHECKER_55
    }

    /// Fraction of bits set to one in the pattern.
    pub fn ones_fraction(self) -> f64 {
        f64::from(self.0.count_ones()) / 8.0
    }
}

impl fmt::Display for DataPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:02X}", self.0)
    }
}

/// Bank index within a chip.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BankId(pub u8);

impl From<u8> for BankId {
    fn from(v: u8) -> BankId {
        BankId(v)
    }
}

impl fmt::Display for BankId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// Subarray index within a bank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubarrayId(pub u16);

impl From<u16> for SubarrayId {
    fn from(v: u16) -> SubarrayId {
        SubarrayId(v)
    }
}

impl fmt::Display for SubarrayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SA{}", self.0)
    }
}

/// A row address within one bank.
///
/// The interpretation (logical, i.e. memory-controller-visible, vs physical,
/// i.e. wordline order) is contextual; [`crate::RowMapping`] converts between
/// the two. The model follows the paper's methodology of reverse engineering
/// the mapping and then reasoning in physical row order (§3.2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RowAddr(pub u32);

impl RowAddr {
    /// Returns the row `delta` rows above (physically) this one, if any.
    pub fn offset(self, delta: i64) -> Option<RowAddr> {
        let v = i64::from(self.0) + delta;
        u32::try_from(v).ok().map(RowAddr)
    }
}

impl From<u32> for RowAddr {
    fn from(v: u32) -> RowAddr {
        RowAddr(v)
    }
}

impl fmt::Display for RowAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picos_roundtrip_fractional_ns() {
        let d = Picos::from_ns(7.5);
        assert_eq!(d.0, 7500);
        assert!((d.as_ns() - 7.5).abs() < 1e-12);
    }

    #[test]
    fn picos_display_switches_units() {
        assert_eq!(Picos::from_ns(36.0).to_string(), "36.00ns");
        assert_eq!(Picos::from_us(7.8).to_string(), "7.80us");
    }

    #[test]
    fn picos_arithmetic() {
        let a = Picos::from_ns(10.0);
        let b = Picos::from_ns(2.5);
        assert_eq!((a + b).as_ns(), 12.5);
        assert_eq!((a - b).as_ns(), 7.5);
        assert_eq!(a.saturating_mul(4).as_ns(), 40.0);
        assert_eq!(Picos(u64::MAX).saturating_add(a), Picos(u64::MAX));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn picos_rejects_negative() {
        let _ = Picos::from_ns(-1.0);
    }

    #[test]
    fn data_pattern_negation_and_bits() {
        assert_eq!(DataPattern::ZEROS.negated(), DataPattern::ONES);
        assert_eq!(DataPattern::CHECKER_55.negated(), DataPattern::CHECKER_AA);
        assert!(DataPattern::CHECKER_55.bit(0));
        assert!(!DataPattern::CHECKER_55.bit(1));
        assert!(!DataPattern::CHECKER_AA.bit(0));
        assert!(DataPattern::CHECKER_AA.bit(1));
    }

    #[test]
    fn data_pattern_ones_fraction() {
        assert_eq!(DataPattern::ZEROS.ones_fraction(), 0.0);
        assert_eq!(DataPattern::ONES.ones_fraction(), 1.0);
        assert_eq!(DataPattern::CHECKER_AA.ones_fraction(), 0.5);
    }

    #[test]
    fn only_sk_hynix_supports_simra() {
        assert!(Manufacturer::SkHynix.supports_simra());
        assert!(!Manufacturer::Micron.supports_simra());
        assert!(!Manufacturer::Samsung.supports_simra());
        assert!(!Manufacturer::Nanya.supports_simra());
    }

    #[test]
    fn row_addr_offset_clamps_at_zero() {
        assert_eq!(RowAddr(5).offset(-5), Some(RowAddr(0)));
        assert_eq!(RowAddr(5).offset(-6), None);
        assert_eq!(RowAddr(5).offset(2), Some(RowAddr(7)));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Manufacturer::SkHynix.to_string(), "SK Hynix");
        assert_eq!(ChipDensity::Gb16.to_string(), "16Gb");
        assert_eq!(ChipOrg::X8.to_string(), "x8");
        assert_eq!(DataPattern::CHECKER_AA.to_string(), "0xAA");
        assert_eq!(Celsius(80.0).to_string(), "80C");
        assert_eq!(BankId(2).to_string(), "B2");
        assert_eq!(SubarrayId(3).to_string(), "SA3");
        assert_eq!(RowAddr(17).to_string(), "R17");
        assert_eq!(DieRevision('A').to_string(), "A");
    }
}
