//! Fixed-seed corruption fuzz for the checkpoint durability layer.
//!
//! Every case takes a pristine CRC32-framed checkpoint file, applies one
//! seeded mutation — a flipped byte, a truncation, or an overwritten
//! span — and asserts the two invariants the whole durability story
//! rests on:
//!
//! 1. **Salvage-or-clean-reject.** [`CheckpointStore::open`] on the
//!    mutated file either succeeds with *only* rows byte-equal to the
//!    pristine data for their key (a salvaged prefix — a subset, never
//!    an invention), or fails with a typed error. It never panics and
//!    never serves silently wrong data.
//! 2. **fsck agrees with resume.** `fsck --repair` on the same mutated
//!    bytes leaves a file that `open` accepts whenever fsck called it
//!    healthy, and `open` rejects whenever fsck reported unrepairable
//!    header damage.
//!
//! The mutation schedule is derived from a fixed seed through the same
//! SplitMix64 mixer the fault-injection layer uses, so a failure here is
//! a deterministic, single-command repro: `cargo test -p pudhammer
//! --test checkpoint_corruption`.

use std::collections::HashMap;
use std::path::PathBuf;

use pud_disturb::rng::mix_all;
use pudhammer::fleet::checkpoint::{CheckpointHeader, CheckpointStore};
use pudhammer::fleet::fsck;

const FUZZ_SEED: u64 = 0x00D5_7AB1_E0C4_2C1A;
const CASES: u64 = 300;

fn header() -> CheckpointHeader {
    CheckpointHeader {
        target: "table2".to_string(),
        scale: "quick".to_string(),
        fingerprint: 0x5EED_F00D_CAFE_0001,
        fault_seed: Some(42),
        shard: None,
    }
}

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("pud-fuzz-{name}-{}", std::process::id()));
    p
}

/// Builds the pristine file and returns its bytes plus the key→data map
/// every salvaged row must agree with.
fn pristine(path: &PathBuf) -> (Vec<u8>, HashMap<(String, String), String>) {
    let _ = std::fs::remove_file(path);
    let store = CheckpointStore::open(path, header()).expect("pristine open");
    for i in 0..12u64 {
        store.record(
            &format!("stage{}", i % 3),
            &format!("C#{i}"),
            &format!("[{},{}]", i * 7, i * 11 + 3),
        );
    }
    drop(store);
    let bytes = std::fs::read(path).expect("pristine bytes");
    let store = CheckpointStore::open(path, header()).expect("pristine reopen");
    let truth = store
        .sorted_rows()
        .into_iter()
        .map(|(stage, chip, data)| ((stage.to_string(), chip.to_string()), format!("{data:?}")))
        .collect();
    (bytes, truth)
}

/// One seeded mutation of the pristine bytes. Never returns the pristine
/// bytes unchanged (a no-op case would assert nothing).
fn mutate(case: u64, bytes: &[u8]) -> Vec<u8> {
    let draw = |k: u64| mix_all(&[FUZZ_SEED, case, k]);
    let mut out = bytes.to_vec();
    match draw(0) % 3 {
        0 => {
            // Flip one bit anywhere in the file.
            let at = (draw(1) % out.len() as u64) as usize;
            out[at] ^= 1 << (draw(2) % 8);
        }
        1 => {
            // Truncate, as kill -9 or a torn write would.
            let keep = (draw(1) % out.len() as u64) as usize;
            out.truncate(keep);
        }
        _ => {
            // Overwrite a short span with seeded garbage.
            let at = (draw(1) % out.len() as u64) as usize;
            let len = 1 + (draw(2) % 16) as usize;
            for (j, slot) in out[at..].iter_mut().take(len).enumerate() {
                *slot = (draw(3 + j as u64) % 256) as u8;
            }
        }
    }
    out
}

#[test]
fn mutated_checkpoints_salvage_or_reject_but_never_lie() {
    let base = temp_path("salvage");
    let (bytes, truth) = pristine(&base);
    let victim = temp_path("victim");
    for case in 0..CASES {
        let mutated = mutate(case, &bytes);
        std::fs::write(&victim, &mutated).expect("write mutation");
        match CheckpointStore::open(&victim, header()) {
            Ok(store) => {
                // Salvage may drop rows, never invent or alter them.
                for (stage, chip, data) in store.sorted_rows() {
                    let key = (stage.to_string(), chip.to_string());
                    let Some(expected) = truth.get(&key) else {
                        panic!("case {case}: salvage invented row {key:?}");
                    };
                    assert_eq!(
                        &format!("{data:?}"),
                        expected,
                        "case {case}: salvaged row {key:?} diverged from pristine data"
                    );
                }
            }
            Err(e) => {
                // A typed, printable rejection is the other legal outcome.
                let _ = e.to_string();
            }
        }
    }
    let _ = std::fs::remove_file(&victim);
    let _ = std::fs::remove_file(&base);
}

#[test]
fn fsck_repair_verdicts_match_what_resume_accepts() {
    let base = temp_path("fsck");
    let (bytes, _) = pristine(&base);
    let victim = temp_path("fsck-victim");
    for case in 0..CASES {
        let mutated = mutate(case, &bytes);
        std::fs::write(&victim, &mutated).expect("write mutation");
        let report = fsck::fsck(&victim, true).expect("fsck never errors on damage");
        assert_eq!(report.files.len(), 1, "case {case}");
        let reopen = CheckpointStore::open(&victim, header());
        if report.healthy() {
            // Everything fsck repaired (or passed) must resume cleanly —
            // short of a campaign-identity mismatch, which happens when
            // the mutation rewrote header fields into a *different*
            // well-formed campaign. fsck is offline and cannot know our
            // campaign, so that disagreement is expected and must still
            // be a typed error, not a panic.
            if let Err(e) = reopen {
                let msg = e.to_string();
                assert!(
                    msg.contains("header") || msg.contains("campaign"),
                    "case {case}: fsck-healthy file rejected for a non-header reason: {msg}"
                );
            }
        } else {
            // Unrepairable damage (a mangled header) must not resume as
            // if nothing happened: open may only succeed by *restarting*
            // the file (the torn-own-header rule), i.e. with zero rows.
            if let Ok(store) = reopen {
                assert_eq!(
                    store.recovered(),
                    0,
                    "case {case}: resume recovered rows from a file fsck called unrepairable"
                );
            }
        }
    }
    let _ = std::fs::remove_file(&victim);
    let _ = std::fs::remove_file(&base);
}
