//! True-/anti-cell layout.
//!
//! A *true cell* stores logical `1` as a charged capacitor; an *anti cell*
//! stores logical `0` as charged. Charge-loss disturbances therefore flip
//! data in opposite directions on true vs anti cells, which is why data
//! patterns interact with cell layout (the paper's footnote 1: Nanya's
//! "complicated true/anti cell pattern" prevents observing bitflips with
//! solid 0x00/0xFF patterns within a refresh window).

use crate::types::{Manufacturer, RowAddr};

/// The true-/anti-cell organization of a chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CellLayout {
    /// Every cell is a true cell.
    #[default]
    AllTrue,
    /// Rows alternate between all-true and all-anti in fixed-size blocks.
    RowBlocks {
        /// Number of consecutive physical rows per block.
        block: u32,
    },
    /// True/anti alternates per row *and* per column parity — the
    /// "complicated" pattern attributed to Nanya chips.
    Interleaved,
}

impl CellLayout {
    /// Layout used by the given manufacturer family in this model.
    pub fn for_manufacturer(mfr: Manufacturer) -> CellLayout {
        match mfr {
            Manufacturer::SkHynix => CellLayout::RowBlocks { block: 2 },
            Manufacturer::Micron => CellLayout::AllTrue,
            Manufacturer::Samsung => CellLayout::RowBlocks { block: 1 },
            Manufacturer::Nanya => CellLayout::Interleaved,
        }
    }

    /// Whether the cell at `(row, col)` is a true cell.
    pub fn is_true_cell(&self, row: RowAddr, col: u32) -> bool {
        match *self {
            CellLayout::AllTrue => true,
            CellLayout::RowBlocks { block } => (row.0 / block.max(1)).is_multiple_of(2),
            CellLayout::Interleaved => (row.0 + col).is_multiple_of(2),
        }
    }

    /// The charge level (`true` = charged) that the cell at `(row, col)`
    /// holds when storing data bit `bit`.
    pub fn charge_for(&self, row: RowAddr, col: u32, bit: bool) -> bool {
        if self.is_true_cell(row, col) {
            bit
        } else {
            !bit
        }
    }

    /// The data bit a cell at `(row, col)` reads as when holding charge
    /// level `charged`.
    pub fn bit_for(&self, row: RowAddr, col: u32, charged: bool) -> bool {
        if self.is_true_cell(row, col) {
            charged
        } else {
            !charged
        }
    }

    /// Fraction of cells in `row` that hold charge when the row stores the
    /// repeating one-byte pattern `pattern`.
    ///
    /// Charged cells are the ones a charge-loss disturbance can flip, so this
    /// drives the data-pattern factor in the disturbance model.
    pub fn charged_fraction(&self, row: RowAddr, pattern: crate::types::DataPattern) -> f64 {
        // The layout and patterns are periodic with period lcm(8, 2) = 8, so
        // sampling eight columns is exact.
        let charged = (0..8u32)
            .filter(|&c| self.charge_for(row, c, pattern.bit(c)))
            .count();
        charged as f64 / 8.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataPattern;

    #[test]
    fn charge_roundtrip() {
        for layout in [
            CellLayout::AllTrue,
            CellLayout::RowBlocks { block: 2 },
            CellLayout::Interleaved,
        ] {
            for row in 0..8u32 {
                for col in 0..8u32 {
                    for bit in [false, true] {
                        let charge = layout.charge_for(RowAddr(row), col, bit);
                        assert_eq!(layout.bit_for(RowAddr(row), col, charge), bit);
                    }
                }
            }
        }
    }

    #[test]
    fn all_true_charged_fraction_follows_pattern() {
        let l = CellLayout::AllTrue;
        assert_eq!(l.charged_fraction(RowAddr(0), DataPattern::ONES), 1.0);
        assert_eq!(l.charged_fraction(RowAddr(0), DataPattern::ZEROS), 0.0);
        assert_eq!(l.charged_fraction(RowAddr(0), DataPattern::CHECKER_AA), 0.5);
    }

    #[test]
    fn interleaved_solid_patterns_charge_half_the_cells() {
        // With interleaved true/anti cells, a solid pattern charges exactly
        // half the cells regardless of polarity — the structural reason the
        // paper could not observe Nanya bitflips with 0x00/0xFF (footnote 1).
        let l = CellLayout::Interleaved;
        for row in 0..4u32 {
            assert_eq!(l.charged_fraction(RowAddr(row), DataPattern::ZEROS), 0.5);
            assert_eq!(l.charged_fraction(RowAddr(row), DataPattern::ONES), 0.5);
        }
    }

    #[test]
    fn row_blocks_alternate() {
        let l = CellLayout::RowBlocks { block: 2 };
        assert!(l.is_true_cell(RowAddr(0), 0));
        assert!(l.is_true_cell(RowAddr(1), 0));
        assert!(!l.is_true_cell(RowAddr(2), 0));
        assert!(!l.is_true_cell(RowAddr(3), 0));
        assert!(l.is_true_cell(RowAddr(4), 0));
    }

    #[test]
    fn per_manufacturer_layouts() {
        assert_eq!(
            CellLayout::for_manufacturer(Manufacturer::Nanya),
            CellLayout::Interleaved
        );
        assert_eq!(
            CellLayout::for_manufacturer(Manufacturer::Micron),
            CellLayout::AllTrue
        );
    }
}
