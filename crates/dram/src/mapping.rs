//! Logical-to-physical row address mapping.
//!
//! DRAM manufacturers remap memory-controller-visible (logical) row
//! addresses to physical wordline positions for routing and post-repair
//! reasons. Read-disturbance studies must account for this because
//! "adjacent" is a *physical* notion: the paper reverse engineers the layout
//! in all chips following prior works' methodology (§3.2).
//!
//! The model implements the mapping families documented by prior reverse
//! engineering work: identity mapping, per-8-row group scrambles (LUT), and
//! pairwise mirroring. Each is a bijection on row addresses within a bank so
//! reverse engineering in `pudhammer::rev_eng` can recover it exactly.

use crate::types::RowAddr;

/// A bijective logical↔physical row address mapping within a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RowMapping {
    /// Physical order equals logical order.
    #[default]
    Sequential,
    /// Adjacent even/odd logical rows are swapped (`phys = logical ^ 1`).
    ///
    /// Models the "mirrored" layouts observed in some Samsung parts.
    MirrorPairs,
    /// Logical rows are scrambled within aligned groups of eight using a
    /// fixed permutation look-up table.
    ///
    /// Models the MLC-style scrambles observed in SK Hynix and Micron parts.
    Lut8(Lut8),
}

/// A permutation of `0..8` applied within each aligned 8-row group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lut8 {
    perm: [u8; 8],
}

impl Lut8 {
    /// Creates a group scramble from a permutation of `0..8`.
    ///
    /// # Errors
    ///
    /// Returns `None` if `perm` is not a permutation of `0..8`.
    pub fn new(perm: [u8; 8]) -> Option<Lut8> {
        let mut seen = [false; 8];
        for &p in &perm {
            if p >= 8 || seen[p as usize] {
                return None;
            }
            seen[p as usize] = true;
        }
        Some(Lut8 { perm })
    }

    /// The permutation table (index = logical offset, value = physical).
    pub fn table(&self) -> [u8; 8] {
        self.perm
    }

    fn apply(&self, low: u32) -> u32 {
        u32::from(self.perm[(low & 7) as usize])
    }

    fn invert(&self, low: u32) -> u32 {
        self.perm
            .iter()
            .position(|&p| u32::from(p) == (low & 7))
            .expect("Lut8 invariant: perm is a permutation") as u32
    }
}

/// The scramble observed in SK Hynix-style parts (an address-bit swizzle
/// within each group of eight).
///
/// This permutation maps every logical bit-0 pair to physical rows two
/// apart — the structural property that lets simultaneous activation of a
/// logical-XOR row group *sandwich* unactivated victims (double-sided
/// SiMRA, Fig. 12a).
pub const SK_HYNIX_LUT: [u8; 8] = [0, 2, 1, 3, 4, 6, 5, 7];

/// The scramble observed in Micron-style parts.
pub const MICRON_LUT: [u8; 8] = [0, 1, 2, 3, 5, 4, 7, 6];

impl RowMapping {
    /// Mapping used by the given manufacturer family in this model.
    pub fn for_manufacturer(mfr: crate::types::Manufacturer) -> RowMapping {
        use crate::types::Manufacturer::*;
        match mfr {
            SkHynix => RowMapping::Lut8(Lut8::new(SK_HYNIX_LUT).expect("valid permutation")),
            Micron => RowMapping::Lut8(Lut8::new(MICRON_LUT).expect("valid permutation")),
            Samsung => RowMapping::MirrorPairs,
            Nanya => RowMapping::Sequential,
        }
    }

    /// Maps a logical (controller-visible) row to its physical position.
    pub fn to_physical(&self, logical: RowAddr) -> RowAddr {
        match self {
            RowMapping::Sequential => logical,
            RowMapping::MirrorPairs => RowAddr(logical.0 ^ 1),
            RowMapping::Lut8(lut) => RowAddr((logical.0 & !7) | lut.apply(logical.0)),
        }
    }

    /// Maps a physical row back to the logical address that selects it.
    pub fn to_logical(&self, physical: RowAddr) -> RowAddr {
        match self {
            RowMapping::Sequential => physical,
            RowMapping::MirrorPairs => RowAddr(physical.0 ^ 1),
            RowMapping::Lut8(lut) => RowAddr((physical.0 & !7) | lut.invert(physical.0)),
        }
    }

    /// Logical addresses of the physical neighbours at distance `dist` on
    /// both sides of the physical row selected by `logical`.
    ///
    /// This is the primitive a double-sided attack needs: given a victim's
    /// logical address, find the logical addresses that activate the
    /// physically adjacent wordlines.
    pub fn neighbors_of(&self, logical: RowAddr, dist: u32) -> (Option<RowAddr>, Option<RowAddr>) {
        let phys = self.to_physical(logical);
        let below = phys.offset(-i64::from(dist)).map(|p| self.to_logical(p));
        let above = phys.offset(i64::from(dist)).map(|p| self.to_logical(p));
        (below, above)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Manufacturer;

    fn all_mappings() -> Vec<RowMapping> {
        vec![
            RowMapping::Sequential,
            RowMapping::MirrorPairs,
            RowMapping::Lut8(Lut8::new(SK_HYNIX_LUT).unwrap()),
            RowMapping::Lut8(Lut8::new(MICRON_LUT).unwrap()),
        ]
    }

    #[test]
    fn mappings_are_bijective_on_a_window() {
        for m in all_mappings() {
            let mut seen = std::collections::HashSet::new();
            for r in 0..256u32 {
                let p = m.to_physical(RowAddr(r));
                assert!(seen.insert(p), "{m:?} not injective at {r}");
                assert_eq!(m.to_logical(p), RowAddr(r), "{m:?} not inverse at {r}");
                // Stays within the aligned 8-row group (mapping is local).
                assert_eq!(p.0 & !7, r & !7);
            }
        }
    }

    #[test]
    fn lut8_rejects_non_permutations() {
        assert!(Lut8::new([0, 1, 2, 3, 4, 5, 6, 8]).is_none());
        assert!(Lut8::new([0, 0, 2, 3, 4, 5, 6, 7]).is_none());
        assert!(Lut8::new([7, 6, 5, 4, 3, 2, 1, 0]).is_some());
    }

    #[test]
    fn mirror_pairs_swaps_even_odd() {
        let m = RowMapping::MirrorPairs;
        assert_eq!(m.to_physical(RowAddr(4)), RowAddr(5));
        assert_eq!(m.to_physical(RowAddr(5)), RowAddr(4));
    }

    #[test]
    fn neighbors_are_physically_adjacent() {
        for m in all_mappings() {
            for r in 8..64u32 {
                let (below, above) = m.neighbors_of(RowAddr(r), 1);
                let phys = m.to_physical(RowAddr(r));
                assert_eq!(m.to_physical(below.unwrap()), RowAddr(phys.0 - 1));
                assert_eq!(m.to_physical(above.unwrap()), RowAddr(phys.0 + 1));
            }
        }
    }

    #[test]
    fn neighbor_below_zero_is_none() {
        let m = RowMapping::Sequential;
        let (below, above) = m.neighbors_of(RowAddr(0), 1);
        assert_eq!(below, None);
        assert_eq!(above, Some(RowAddr(1)));
    }

    #[test]
    fn per_manufacturer_mappings_differ() {
        let maps: Vec<_> = Manufacturer::ALL
            .iter()
            .map(|&m| RowMapping::for_manufacturer(m))
            .collect();
        assert_eq!(maps[3], RowMapping::Sequential);
        assert_ne!(maps[0], maps[1]);
        assert_ne!(maps[0], maps[2]);
    }
}
