//! Bench target regenerating Fig. 21 of the paper.

fn main() {
    pud_bench::run_experiment("fig21_combined_rh_comra", || {
        pudhammer::experiments::combined::fig21(&pud_bench::bench_scale())
    });
}
