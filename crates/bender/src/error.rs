//! Typed executor errors.
//!
//! [`Executor::try_run`](crate::Executor::try_run) surfaces these directly;
//! [`Executor::run`](crate::Executor::run) raises them as a panic payload
//! (via `std::panic::panic_any`) so the 20+ infallible call sites keep
//! their shape — the fleet sweep catches the unwind, downcasts the payload
//! back to an `ExecError`, and feeds it into its retry/quarantine policy.

use std::fmt;

use pud_dram::Picos;

use crate::fault::FaultKind;

/// An error produced while executing a test program.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// The program runs longer than `t_REFW` with refresh disabled while
    /// the environment enforces the refresh-window bound — on the real
    /// infrastructure its bitflips would be contaminated by retention
    /// failures (§3.1).
    RefreshWindowExceeded {
        /// The offending program's duration.
        duration: Picos,
        /// The refresh window bound (`t_REFW`).
        refw: Picos,
    },
    /// An injected fault fired (see [`crate::fault`]).
    Fault {
        /// What fired.
        kind: FaultKind,
        /// Lifetime command ordinal at which it fired.
        at_cmd: u64,
    },
    /// The program references banks or rows outside the chip geometry.
    InvalidProgram {
        /// Human-readable description of the violated invariant.
        reason: String,
    },
}

impl ExecError {
    /// Whether retrying the program can succeed. Injected transient faults
    /// are consumed when they fire, so a retry reproduces the fault-free
    /// result; dead chips and invalid programs fail forever.
    pub fn is_transient(&self) -> bool {
        match self {
            ExecError::RefreshWindowExceeded { .. } => false,
            ExecError::Fault { kind, .. } => kind.is_transient(),
            ExecError::InvalidProgram { .. } => false,
        }
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::RefreshWindowExceeded { duration, refw } => write!(
                f,
                "test program ({duration}) exceeds the refresh window ({refw}) \
                 with refresh disabled"
            ),
            ExecError::Fault { kind, at_cmd } => {
                write!(f, "injected fault: {} at command {at_cmd}", kind.name())
            }
            ExecError::InvalidProgram { reason } => {
                write!(f, "invalid test program: {reason}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transience_follows_the_fault_taxonomy() {
        let transient = ExecError::Fault {
            kind: FaultKind::BusGlitch,
            at_cmd: 42,
        };
        assert!(transient.is_transient());
        let dead = ExecError::Fault {
            kind: FaultKind::ChipDead,
            at_cmd: 42,
        };
        assert!(!dead.is_transient());
        let refw = ExecError::RefreshWindowExceeded {
            duration: Picos::from_ns(100.0),
            refw: Picos::from_ns(50.0),
        };
        assert!(!refw.is_transient());
    }

    #[test]
    fn errors_render_readable_messages() {
        let e = ExecError::Fault {
            kind: FaultKind::CommandTimeout,
            at_cmd: 1_234,
        };
        assert_eq!(
            e.to_string(),
            "injected fault: command_timeout at command 1234"
        );
        let r = ExecError::RefreshWindowExceeded {
            duration: Picos::from_ns(100.0),
            refw: Picos::from_ns(50.0),
        };
        assert!(r.to_string().contains("exceeds the refresh window"));
    }
}
