//! Length-prefixed frame protocol shared by the shard coordinator and the
//! `repro serve` query server.
//!
//! A shard worker (the `repro` binary re-exec'd with `--shard-worker`)
//! speaks this protocol on its **stdout**: experiment output never goes
//! there (workers run quiet; rendering is the coordinator's job), so the
//! stream carries only frames. The query server speaks the same framing
//! over TCP, with its own frame types. Each frame is
//!
//! ```text
//! [u32 LE payload length][u8 frame type][payload: UTF-8 JSON]
//! ```
//!
//! The JSON payload keeps frames debuggable (`xxd` shows readable field
//! names) and versionable without a binary schema. Frame types:
//!
//! - [`Frame::Hello`] — sent once at worker startup: shard identity, fleet
//!   fingerprint, target, and respawn attempt. The coordinator validates
//!   it against the campaign before trusting anything else.
//! - [`Frame::Progress`] — periodic live-counter samples, forwarded into
//!   the coordinator's aggregated progress display.
//! - [`Frame::Done`] — sent once on orderly completion. A worker that
//!   crashes (abort, OOM-kill, SIGKILL) never sends it: the coordinator
//!   detects the EOF-without-`Done` and schedules a respawn.
//! - [`Frame::Query`] — a `repro serve` client asking for one profile key
//!   under an optional deadline budget.
//! - [`Frame::Response`] — the server's typed verdict for one query: a
//!   value, or an explicit degradation status ([`QueryStatus`]) — never a
//!   silent drop.
//!
//! A truncated frame (EOF mid-length, mid-type, or mid-payload) is
//! reported as [`WireError::Truncated`] — the signature of a peer dying
//! mid-write. A clean EOF between frames decodes as `Ok(None)`. A
//! zero-length or over-[`MAX_PAYLOAD`] length word is a *protocol* error
//! reported with the byte offset of the offending length prefix (see
//! [`FrameReader`]) — it is never trusted as an allocation size and never
//! panics: the cap is shared by the coordinator and server paths, so no
//! peer on either side can make the other allocate unboundedly.

use std::io::{Read, Write};

use pud_observe::json::JsonObject;
use pud_observe::JsonValue;

/// Maximum accepted payload size, shared by every decoder (coordinator
/// worker streams and the `repro serve` TCP path). Frames are small (a few
/// hundred bytes); anything larger means a corrupt length word or a
/// hostile client, not a real frame — and is rejected *before* any
/// allocation is sized from it.
pub const MAX_PAYLOAD: u32 = 1 << 20;

/// Frame type tags on the wire.
const TAG_HELLO: u8 = 1;
const TAG_PROGRESS: u8 = 2;
const TAG_DONE: u8 = 3;
const TAG_QUERY: u8 = 4;
const TAG_RESPONSE: u8 = 5;

/// The typed verdict of a [`Frame::Response`]: every query gets exactly
/// one of these — the degradation ladder is explicit on the wire, never a
/// silent drop or a stalled connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryStatus {
    /// The profile value is in the response.
    Ok,
    /// The admission queue was full; the request was shed. Retry later.
    Overloaded,
    /// The server is degraded (simulation budget exhausted or worker pool
    /// lost): cache hits still answer, but this miss cannot be computed.
    Degraded,
    /// The backing simulation failed (injected chip fault that survived
    /// the retry budget, or an internal error).
    Unavailable,
    /// The request's deadline expired before (or while) computing.
    Expired,
    /// The query itself was malformed (unparseable key, unknown family).
    BadRequest,
}

impl QueryStatus {
    /// Wire name (also the `repro query` stderr vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            QueryStatus::Ok => "ok",
            QueryStatus::Overloaded => "overloaded",
            QueryStatus::Degraded => "degraded",
            QueryStatus::Unavailable => "unavailable",
            QueryStatus::Expired => "expired",
            QueryStatus::BadRequest => "bad-request",
        }
    }

    fn parse(s: &str) -> Option<QueryStatus> {
        Some(match s {
            "ok" => QueryStatus::Ok,
            "overloaded" => QueryStatus::Overloaded,
            "degraded" => QueryStatus::Degraded,
            "unavailable" => QueryStatus::Unavailable,
            "expired" => QueryStatus::Expired,
            "bad-request" => QueryStatus::BadRequest,
            _ => return None,
        })
    }
}

impl std::fmt::Display for QueryStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One protocol frame (coordinator↔worker or serve client↔server).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Worker startup announcement.
    Hello {
        /// This worker's shard index, `0..count`.
        shard: u32,
        /// Total shard count of the campaign.
        count: u32,
        /// The worker's [`crate::fleet::FleetConfig::fingerprint`] — must
        /// match the coordinator's.
        fingerprint: u64,
        /// The experiment target the worker is running.
        target: String,
        /// Respawn attempt number (0 = first spawn).
        attempt: u32,
    },
    /// Periodic live-counter sample.
    Progress {
        /// Commands executed so far.
        commands: u64,
        /// Sweep items completed.
        items_done: u64,
        /// Sweep items announced.
        items_total: u64,
        /// Transient-fault retries.
        retries: u64,
        /// Quarantined chips.
        quarantined: u64,
        /// Supervisor units completed.
        units_done: u64,
    },
    /// Orderly completion report.
    Done {
        /// Supervisor units completed over the worker's lifetime.
        units_done: u64,
        /// Transient-fault retries.
        retries: u64,
        /// Quarantined chips.
        quarantined: u64,
        /// Whether the worker was cancelled (deadline/interrupt) rather
        /// than running to completion.
        cancelled: bool,
        /// The worker's peak resident set size, in KiB (0 if unknown).
        peak_rss_kb: u64,
        /// Whether the worker latched a checkpoint write error (its shard
        /// checkpoint may be incomplete).
        write_error: bool,
    },
    /// A `repro serve` client's point query.
    Query {
        /// Client-chosen request id, echoed in the response so one
        /// connection can pipeline queries.
        id: u64,
        /// Canonical profile key text (see `pudhammer::serve::ProfileKey`).
        key: String,
        /// Request deadline budget in milliseconds (0 = no deadline). The
        /// server propagates it into the simulation's cancellation token.
        deadline_ms: u64,
    },
    /// The server's verdict for one [`Frame::Query`].
    Response {
        /// Echo of the query id.
        id: u64,
        /// The typed outcome.
        status: QueryStatus,
        /// Whether the value was served from the profile store (`true`) or
        /// computed on demand (`false`). Meaningful only for `Ok`.
        cached: bool,
        /// The rendered profile value (empty unless `Ok`). Byte-identical
        /// whether served from cache or computed on demand.
        value: String,
        /// Human-readable detail for non-`Ok` statuses.
        detail: String,
    },
}

/// Decode-side failures.
#[derive(Debug, PartialEq, Eq)]
pub enum WireError {
    /// The stream ended inside a frame — a worker died mid-write.
    Truncated,
    /// An I/O error while reading or writing.
    Io(String),
    /// An unknown frame tag or undecodable payload.
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "stream truncated mid-frame"),
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::Malformed(e) => write!(f, "malformed frame: {e}"),
        }
    }
}

impl Frame {
    fn tag(&self) -> u8 {
        match self {
            Frame::Hello { .. } => TAG_HELLO,
            Frame::Progress { .. } => TAG_PROGRESS,
            Frame::Done { .. } => TAG_DONE,
            Frame::Query { .. } => TAG_QUERY,
            Frame::Response { .. } => TAG_RESPONSE,
        }
    }

    fn payload(&self) -> String {
        match self {
            Frame::Hello {
                shard,
                count,
                fingerprint,
                target,
                attempt,
            } => JsonObject::new()
                .u64("shard", u64::from(*shard))
                .u64("count", u64::from(*count))
                .u64("fingerprint", *fingerprint)
                .str("target", target)
                .u64("attempt", u64::from(*attempt))
                .finish(),
            Frame::Progress {
                commands,
                items_done,
                items_total,
                retries,
                quarantined,
                units_done,
            } => JsonObject::new()
                .u64("commands", *commands)
                .u64("items_done", *items_done)
                .u64("items_total", *items_total)
                .u64("retries", *retries)
                .u64("quarantined", *quarantined)
                .u64("units_done", *units_done)
                .finish(),
            Frame::Done {
                units_done,
                retries,
                quarantined,
                cancelled,
                peak_rss_kb,
                write_error,
            } => JsonObject::new()
                .u64("units_done", *units_done)
                .u64("retries", *retries)
                .u64("quarantined", *quarantined)
                .bool("cancelled", *cancelled)
                .u64("peak_rss_kb", *peak_rss_kb)
                .bool("write_error", *write_error)
                .finish(),
            Frame::Query {
                id,
                key,
                deadline_ms,
            } => JsonObject::new()
                .u64("id", *id)
                .str("key", key)
                .u64("deadline_ms", *deadline_ms)
                .finish(),
            Frame::Response {
                id,
                status,
                cached,
                value,
                detail,
            } => JsonObject::new()
                .u64("id", *id)
                .str("status", status.name())
                .bool("cached", *cached)
                .str("value", value)
                .str("detail", detail)
                .finish(),
        }
    }

    /// Writes this frame (length word, tag, payload) and flushes, so a
    /// frame is either fully visible to the coordinator or not at all —
    /// the coordinator's truncation detection depends on workers never
    /// sitting on a half-buffered frame.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), WireError> {
        let payload = self.payload();
        let bytes = payload.as_bytes();
        let len = u32::try_from(bytes.len())
            .map_err(|_| WireError::Malformed("frame too large".into()))?;
        let io = |e: std::io::Error| WireError::Io(e.to_string());
        w.write_all(&len.to_le_bytes()).map_err(io)?;
        w.write_all(&[self.tag()]).map_err(io)?;
        w.write_all(bytes).map_err(io)?;
        w.flush().map_err(io)
    }

    /// Reads the next frame. `Ok(None)` on clean EOF (stream ended exactly
    /// between frames); [`WireError::Truncated`] if it ended inside one.
    /// Byte offsets in protocol errors are relative to where `r` currently
    /// points; use a persistent [`FrameReader`] to get stream-absolute
    /// offsets across many frames.
    pub fn read_from(r: &mut impl Read) -> Result<Option<Frame>, WireError> {
        FrameReader::new(r).next_frame()
    }

    fn decode(tag: u8, v: &JsonValue) -> Result<Frame, WireError> {
        let field = |key: &str| {
            v.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| WireError::Malformed(format!("missing field {key}")))
        };
        let flag = |key: &str| match v.get(key) {
            Some(JsonValue::Bool(b)) => Ok(*b),
            _ => Err(WireError::Malformed(format!("missing field {key}"))),
        };
        let text = |key: &str| {
            v.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| WireError::Malformed(format!("missing field {key}")))
        };
        match tag {
            TAG_HELLO => Ok(Frame::Hello {
                shard: field("shard")? as u32,
                count: field("count")? as u32,
                fingerprint: field("fingerprint")?,
                target: text("target")?,
                attempt: field("attempt")? as u32,
            }),
            TAG_PROGRESS => Ok(Frame::Progress {
                commands: field("commands")?,
                items_done: field("items_done")?,
                items_total: field("items_total")?,
                retries: field("retries")?,
                quarantined: field("quarantined")?,
                units_done: field("units_done")?,
            }),
            TAG_DONE => Ok(Frame::Done {
                units_done: field("units_done")?,
                retries: field("retries")?,
                quarantined: field("quarantined")?,
                cancelled: flag("cancelled")?,
                peak_rss_kb: field("peak_rss_kb")?,
                write_error: flag("write_error")?,
            }),
            TAG_QUERY => Ok(Frame::Query {
                id: field("id")?,
                key: text("key")?,
                deadline_ms: field("deadline_ms")?,
            }),
            TAG_RESPONSE => Ok(Frame::Response {
                id: field("id")?,
                status: {
                    let s = text("status")?;
                    QueryStatus::parse(&s).ok_or_else(|| {
                        WireError::Malformed(format!("unknown query status {s:?}"))
                    })?
                },
                cached: flag("cached")?,
                value: text("value")?,
                detail: text("detail")?,
            }),
            other => Err(WireError::Malformed(format!("unknown frame tag {other}"))),
        }
    }
}

/// A stateful frame decoder that tracks its absolute position in the
/// stream, so a bad length word is reported *with the byte offset of the
/// offending prefix* — the difference between "somewhere in a 40-minute
/// campaign the worker stream went bad" and an `xxd`-able location.
///
/// Two length words are protocol errors (never allocation sizes, never
/// panics):
///
/// - **zero** — no frame has an empty payload (every payload is a JSON
///   object), so a zero length word means the peer lost framing;
/// - **over [`MAX_PAYLOAD`]** — a corrupt word or a hostile client trying
///   to size an allocation.
pub struct FrameReader<R> {
    r: R,
    offset: u64,
}

impl<R: Read> FrameReader<R> {
    /// Wraps `r`, treating its current position as byte offset 0.
    pub fn new(r: R) -> FrameReader<R> {
        FrameReader { r, offset: 0 }
    }

    /// Total bytes consumed from the underlying stream so far.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Reads the next frame. `Ok(None)` on clean EOF between frames;
    /// [`WireError::Truncated`] on EOF inside a frame; typed
    /// [`WireError::Malformed`] — naming the byte offset of the length
    /// prefix — on a zero or over-cap length word.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        let frame_start = self.offset;
        let mut len_buf = [0u8; 4];
        match self.fill(&mut len_buf)? {
            ReadOutcome::Eof => return Ok(None),
            ReadOutcome::Partial => return Err(WireError::Truncated),
            ReadOutcome::Full => {}
        }
        let len = u32::from_le_bytes(len_buf);
        if len == 0 {
            return Err(WireError::Malformed(format!(
                "zero-length frame at byte offset {frame_start}"
            )));
        }
        if len > MAX_PAYLOAD {
            return Err(WireError::Malformed(format!(
                "payload length {len} exceeds cap {MAX_PAYLOAD} at byte offset {frame_start}"
            )));
        }
        let mut tag = [0u8; 1];
        match self.fill(&mut tag)? {
            ReadOutcome::Full => {}
            _ => return Err(WireError::Truncated),
        }
        let mut payload = vec![0u8; len as usize];
        match self.fill(&mut payload)? {
            ReadOutcome::Full => {}
            _ => return Err(WireError::Truncated),
        }
        let text = String::from_utf8(payload).map_err(|_| {
            WireError::Malformed(format!(
                "payload is not UTF-8 in frame at byte offset {frame_start}"
            ))
        })?;
        let v = JsonValue::parse(&text).map_err(WireError::Malformed)?;
        Frame::decode(tag[0], &v).map(Some)
    }

    fn fill(&mut self, buf: &mut [u8]) -> Result<ReadOutcome, WireError> {
        let (outcome, n) = read_exact_or_eof(&mut self.r, buf)?;
        self.offset += n as u64;
        Ok(outcome)
    }
}

/// One event from a [`FrameStream`].
#[derive(Debug, PartialEq, Eq)]
pub enum Heartbeat {
    /// A frame arrived.
    Frame(Frame),
    /// The stream ended cleanly between frames.
    Eof,
    /// The stream failed (truncation, I/O, malformed frame).
    Err(WireError),
}

/// A frame reader with a *timeout*: [`Frame::read_from`] blocks forever on
/// a stream that stays open but silent — exactly the failure mode of a
/// hung worker — so the coordinator's watchdog reads through this instead.
/// A background thread pumps the blocking reads into a channel; the owner
/// polls with [`FrameStream::next_within`].
///
/// The reader thread is detached: once the stream's far end dies (the
/// watchdog SIGKILLs the worker), the pending blocking read returns
/// (EOF/error) and the thread exits on its own.
pub struct FrameStream {
    rx: std::sync::mpsc::Receiver<Heartbeat>,
}

impl FrameStream {
    /// Spawns the reader thread over `r`. Decoding goes through a
    /// persistent [`FrameReader`], so protocol errors carry byte offsets
    /// absolute in the worker's whole stream, not relative to one frame.
    pub fn spawn(r: impl Read + Send + 'static) -> FrameStream {
        let (tx, rx) = std::sync::mpsc::channel();
        let mut reader = FrameReader::new(r);
        std::thread::spawn(move || loop {
            let beat = match reader.next_frame() {
                Ok(Some(frame)) => Heartbeat::Frame(frame),
                Ok(None) => Heartbeat::Eof,
                Err(e) => Heartbeat::Err(e),
            };
            let terminal = !matches!(beat, Heartbeat::Frame(_));
            if tx.send(beat).is_err() || terminal {
                return;
            }
        });
        FrameStream { rx }
    }

    /// Waits up to `timeout` for the next stream event. `None` means the
    /// stream is *silent* — open, but nothing arrived in the window. After
    /// an [`Heartbeat::Eof`] or [`Heartbeat::Err`] the stream yields
    /// nothing further (the reader thread has exited).
    pub fn next_within(&self, timeout: std::time::Duration) -> Option<Heartbeat> {
        match self.rx.recv_timeout(timeout) {
            Ok(beat) => Some(beat),
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => None,
            // A disconnected channel after a terminal event was already
            // consumed: report it as EOF forever rather than None, so a
            // caller that keeps polling cannot misread a finished stream
            // as a hung one.
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => Some(Heartbeat::Eof),
        }
    }
}

enum ReadOutcome {
    Full,
    Partial,
    Eof,
}

/// `read_exact` that distinguishes "EOF before any byte" from "EOF inside
/// the buffer" — the difference between a finished worker and a dead one.
/// Also returns how many bytes were consumed, so [`FrameReader`] can keep
/// its stream offset exact even across partial reads.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<(ReadOutcome, usize), WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                let outcome = if filled == 0 {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::Partial
                };
                return Ok((outcome, filled));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e.to_string())),
        }
    }
    Ok((ReadOutcome::Full, filled))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let mut buf = Vec::new();
        frame.write_to(&mut buf).expect("write");
        let mut cursor = &buf[..];
        let got = Frame::read_from(&mut cursor).expect("read").expect("frame");
        assert_eq!(got, frame);
        assert_eq!(Frame::read_from(&mut cursor), Ok(None), "clean EOF after");
    }

    #[test]
    fn frames_round_trip() {
        roundtrip(Frame::Hello {
            shard: 2,
            count: 4,
            fingerprint: 0xDEAD_BEEF_1234_5678,
            target: "table2".into(),
            attempt: 1,
        });
        roundtrip(Frame::Progress {
            commands: 1_000_000,
            items_done: 3,
            items_total: 14,
            retries: 1,
            quarantined: 0,
            units_done: 3,
        });
        roundtrip(Frame::Done {
            units_done: 14,
            retries: 2,
            quarantined: 1,
            cancelled: false,
            peak_rss_kb: 123_456,
            write_error: false,
        });
        roundtrip(Frame::Query {
            id: 7,
            key: "family=SK Hynix-A-4Gb;chip=0;pattern=rh-ds;dp=0x55;temp_cc=8000;aggon_ps=36000"
                .into(),
            deadline_ms: 1500,
        });
        roundtrip(Frame::Response {
            id: 7,
            status: QueryStatus::Ok,
            cached: true,
            value: "hc_first=12345".into(),
            detail: String::new(),
        });
        for status in [
            QueryStatus::Overloaded,
            QueryStatus::Degraded,
            QueryStatus::Unavailable,
            QueryStatus::Expired,
            QueryStatus::BadRequest,
        ] {
            roundtrip(Frame::Response {
                id: 1,
                status,
                cached: false,
                value: String::new(),
                detail: format!("why: {status}"),
            });
        }
    }

    #[test]
    fn query_status_names_round_trip() {
        for status in [
            QueryStatus::Ok,
            QueryStatus::Overloaded,
            QueryStatus::Degraded,
            QueryStatus::Unavailable,
            QueryStatus::Expired,
            QueryStatus::BadRequest,
        ] {
            assert_eq!(QueryStatus::parse(status.name()), Some(status));
        }
        assert_eq!(QueryStatus::parse("nope"), None);
    }

    #[test]
    fn several_frames_stream_back_to_back() {
        let frames = vec![
            Frame::Hello {
                shard: 0,
                count: 1,
                fingerprint: 7,
                target: "fig10".into(),
                attempt: 0,
            },
            Frame::Progress {
                commands: 10,
                items_done: 0,
                items_total: 4,
                retries: 0,
                quarantined: 0,
                units_done: 0,
            },
            Frame::Done {
                units_done: 4,
                retries: 0,
                quarantined: 0,
                cancelled: true,
                peak_rss_kb: 0,
                write_error: true,
            },
        ];
        let mut buf = Vec::new();
        for f in &frames {
            f.write_to(&mut buf).unwrap();
        }
        let mut cursor = &buf[..];
        let mut got = Vec::new();
        while let Some(f) = Frame::read_from(&mut cursor).unwrap() {
            got.push(f);
        }
        assert_eq!(got, frames);
    }

    #[test]
    fn truncation_is_detected_not_silently_eof() {
        let frame = Frame::Done {
            units_done: 1,
            retries: 0,
            quarantined: 0,
            cancelled: false,
            peak_rss_kb: 42,
            write_error: false,
        };
        let mut buf = Vec::new();
        frame.write_to(&mut buf).unwrap();
        // Cut the stream at every possible offset inside the frame: all of
        // them must read as Truncated, never as a clean EOF or a frame.
        for cut in 1..buf.len() {
            let mut cursor = &buf[..cut];
            assert_eq!(
                Frame::read_from(&mut cursor),
                Err(WireError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn absurd_length_word_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.push(TAG_DONE);
        let mut cursor = &buf[..];
        assert!(matches!(
            Frame::read_from(&mut cursor),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn bad_length_words_name_the_byte_offset_of_the_prefix() {
        // One good frame, then a zero length word: the error must name the
        // offset where the *second* frame's prefix starts, not offset 0.
        let good = Frame::Progress {
            commands: 9,
            items_done: 1,
            items_total: 2,
            retries: 0,
            quarantined: 0,
            units_done: 1,
        };
        let mut buf = Vec::new();
        good.write_to(&mut buf).unwrap();
        let second_start = buf.len() as u64;
        buf.extend_from_slice(&0u32.to_le_bytes());
        let mut reader = FrameReader::new(&buf[..]);
        assert_eq!(reader.next_frame(), Ok(Some(good)));
        assert_eq!(reader.offset(), second_start);
        match reader.next_frame() {
            Err(WireError::Malformed(msg)) => {
                assert!(
                    msg.contains("zero-length") && msg.contains(&second_start.to_string()),
                    "message must name the offending offset: {msg}"
                );
            }
            other => panic!("expected Malformed, got {other:?}"),
        }

        // An over-cap length word, same positioning requirement.
        let mut buf2 = buf[..second_start as usize].to_vec();
        buf2.extend_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        let mut reader = FrameReader::new(&buf2[..]);
        reader.next_frame().unwrap();
        match reader.next_frame() {
            Err(WireError::Malformed(msg)) => {
                assert!(
                    msg.contains("exceeds cap") && msg.contains(&second_start.to_string()),
                    "message must name the offending offset: {msg}"
                );
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn zero_length_prefix_is_a_protocol_error_not_a_frame() {
        // At stream start, the offset named is 0.
        let buf = 0u32.to_le_bytes();
        let mut cursor = &buf[..];
        match Frame::read_from(&mut cursor) {
            Err(WireError::Malformed(msg)) => {
                assert!(msg.contains("byte offset 0"), "got: {msg}");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn frame_stream_reports_bad_length_words_as_malformed() {
        use std::time::Duration;
        let mut buf = Vec::new();
        buf.extend_from_slice(&0u32.to_le_bytes());
        let stream = FrameStream::spawn(std::io::Cursor::new(buf));
        match stream.next_within(Duration::from_secs(5)) {
            Some(Heartbeat::Err(WireError::Malformed(msg))) => {
                assert!(msg.contains("zero-length"), "got: {msg}");
            }
            other => panic!("expected Malformed heartbeat, got {other:?}"),
        }
    }

    #[test]
    fn frame_streams_deliver_frames_then_eof_and_time_out_on_silence() {
        use std::time::Duration;
        let frame = Frame::Progress {
            commands: 1,
            items_done: 0,
            items_total: 1,
            retries: 0,
            quarantined: 0,
            units_done: 0,
        };
        let mut buf = Vec::new();
        frame.write_to(&mut buf).unwrap();
        // A finite buffer: one frame, then clean EOF, then EOF forever.
        let stream = FrameStream::spawn(std::io::Cursor::new(buf));
        assert_eq!(
            stream.next_within(Duration::from_secs(5)),
            Some(Heartbeat::Frame(frame))
        );
        assert_eq!(
            stream.next_within(Duration::from_secs(5)),
            Some(Heartbeat::Eof)
        );
        assert_eq!(
            stream.next_within(Duration::from_millis(10)),
            Some(Heartbeat::Eof),
            "a finished stream keeps reading as finished, never as hung"
        );
        // A pipe nobody writes to: silence, reported as None within the
        // timeout window. The write end leaks into a zombie reader thread,
        // which is exactly the detached-thread design.
        let (reader, writer) = std::io::pipe().expect("pipe");
        let stream = FrameStream::spawn(reader);
        assert_eq!(stream.next_within(Duration::from_millis(50)), None);
        drop(writer);
        assert_eq!(
            stream.next_within(Duration::from_secs(5)),
            Some(Heartbeat::Eof)
        );
    }

    #[test]
    fn truncated_streams_surface_the_error_through_the_stream() {
        use std::time::Duration;
        let frame = Frame::Done {
            units_done: 1,
            retries: 0,
            quarantined: 0,
            cancelled: false,
            peak_rss_kb: 0,
            write_error: false,
        };
        let mut buf = Vec::new();
        frame.write_to(&mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        let stream = FrameStream::spawn(std::io::Cursor::new(buf));
        assert_eq!(
            stream.next_within(Duration::from_secs(5)),
            Some(Heartbeat::Err(WireError::Truncated))
        );
    }

    #[test]
    fn unknown_tag_is_malformed() {
        let payload = b"{}";
        let mut buf = Vec::new();
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.push(99);
        buf.extend_from_slice(payload);
        let mut cursor = &buf[..];
        assert!(matches!(
            Frame::read_from(&mut cursor),
            Err(WireError::Malformed(_))
        ));
    }
}
