//! Determinism of the parallel fleet-sweep engine: experiment output and
//! trace streams must be byte-identical at any thread count (the
//! load-bearing guarantee of `pudhammer::fleet::sweep`).

use std::sync::{Arc, Mutex};

use pudhammer_suite::bender::fault::FaultConfig;

use pudhammer_suite::bender::ops;
use pudhammer_suite::dram::RowAddr;
use pudhammer_suite::hammer::experiments::{simra, table2, Scale};
use pudhammer_suite::hammer::fleet::{sweep, Fleet, FleetConfig};
use pudhammer_suite::observe::{RingBufferSink, SharedSink, TraceEvent};

/// Tests in this binary share process-global observability state (the
/// global trace sink, the metrics registry), so they must not overlap.
static GLOBAL_STATE: Mutex<()> = Mutex::new(());

fn tiny_scale(threads: usize) -> Scale {
    let mut s = Scale::quick();
    s.fleet.victims_per_subarray = 1;
    s.threads = threads;
    s
}

/// Runs one traced sweep over a fresh fleet and returns the per-chip event
/// sequences plus the merged stream the destination sink received.
fn traced_sweep(threads: usize) -> (Vec<Vec<TraceEvent>>, Vec<TraceEvent>) {
    let mut fleet = Fleet::build(FleetConfig::quick());
    let ring = Arc::new(Mutex::new(RingBufferSink::new(1 << 18)));
    let sink: SharedSink = ring.clone();
    for chip in &mut fleet.chips {
        chip.exec.set_trace_sink(sink.clone());
    }
    let (_, traces) = sweep::sweep_traced(threads, &mut fleet.chips, |_, chip| {
        let victim = chip.victim_rows()[0];
        let aggressor = RowAddr(victim.0.saturating_sub(1));
        let program = ops::single_sided_rowhammer(chip.bank(), aggressor, ops::t_ras(), 64);
        chip.exec.run(&program);
    });
    let traces = traces.expect("every chip had a sink attached");
    assert_eq!(traces.dropped, 0, "rings must not overflow in this test");
    traces.merge();
    let merged = ring.lock().unwrap().to_vec();
    (traces.per_chip, merged)
}

#[test]
fn fault_seeded_sweeps_are_deterministic_across_thread_counts() {
    let _guard = GLOBAL_STATE.lock().unwrap_or_else(|e| e.into_inner());
    // Seed 103 is the curated campaign (see examples/fault_seed_scan.rs):
    // across the 14 quick-fleet chips it kills Micron-E-16Gb#0 and injects
    // one transient fault into Micron-F-16Gb#0 plus two into
    // Samsung-C-16Gb#0. Retry counts, the quarantine set, and the rendered
    // table (including its quarantine footer) must not depend on the
    // worker count.
    let run = |threads| {
        let mut s = tiny_scale(threads);
        s.fleet.fault = Some(FaultConfig::from_seed(103));
        table2::table2(&s)
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(
        serial.to_string(),
        parallel.to_string(),
        "fault-seeded table2 must not depend on threads"
    );
    assert_eq!(serial.sweep.retries(), parallel.sweep.retries());
    let quarantined = |t: &pudhammer_suite::hammer::experiments::table2::Table2| {
        t.sweep
            .chips
            .iter()
            .filter(|c| c.quarantined.is_some())
            .map(|c| c.label.clone())
            .collect::<Vec<_>>()
    };
    assert_eq!(quarantined(&serial), quarantined(&parallel));
    assert_eq!(quarantined(&serial), vec!["Micron-E-16Gb#0".to_string()]);
    assert_eq!(serial.sweep.retries(), 3, "1 + 2 transient faults retried");
}

#[test]
fn sweeps_are_byte_identical_across_thread_counts() {
    let _guard = GLOBAL_STATE.lock().unwrap_or_else(|e| e.into_inner());
    // A global ring sink captures every command-stream event the
    // experiments' executors emit (they attach it at fleet construction).
    // One #[test] owns the whole comparison: the sink is process-wide.
    let global = Arc::new(Mutex::new(RingBufferSink::new(1 << 20)));
    pudhammer_suite::observe::set_global_sink(global.clone());
    let drain = |ring: &Arc<Mutex<RingBufferSink>>| -> Vec<TraceEvent> {
        let mut ring = ring.lock().unwrap();
        assert_eq!(ring.dropped(), 0, "ring must hold the full event stream");
        let events = ring.to_vec();
        ring.clear();
        events
    };

    // Experiment output: the full Table 2 reproduction and a SiMRA figure,
    // rendered at one worker and at four, must match byte for byte — and
    // so must the merged trace streams they emit.
    let t2_serial = table2::table2(&tiny_scale(1)).to_string();
    let t2_events_serial = drain(&global);
    let t2_parallel = table2::table2(&tiny_scale(4)).to_string();
    let t2_events_parallel = drain(&global);
    assert_eq!(t2_serial, t2_parallel, "table2 must not depend on threads");
    assert!(!t2_events_serial.is_empty());
    assert_eq!(
        t2_events_serial, t2_events_parallel,
        "table2 trace stream must not depend on threads"
    );

    let f16_serial = simra::fig16(&tiny_scale(1)).to_string();
    let f16_events_serial = drain(&global);
    let f16_parallel = simra::fig16(&tiny_scale(4)).to_string();
    let f16_events_parallel = drain(&global);
    assert_eq!(f16_serial, f16_parallel, "fig16 must not depend on threads");
    assert!(!f16_events_serial.is_empty());
    assert_eq!(
        f16_events_serial, f16_events_parallel,
        "fig16 trace stream must not depend on threads"
    );
    pudhammer_suite::observe::clear_global_sink();

    // Trace streams: per-chip event sequences and the timestamp-merged
    // stream must also be independent of the worker count.
    let (per_chip_serial, merged_serial) = traced_sweep(1);
    let (per_chip_parallel, merged_parallel) = traced_sweep(4);
    assert!(per_chip_serial.iter().all(|c| !c.is_empty()));
    assert_eq!(
        per_chip_serial, per_chip_parallel,
        "per-chip trace sequences must not depend on threads"
    );
    assert_eq!(
        merged_serial, merged_parallel,
        "merged trace stream must not depend on threads"
    );
}
