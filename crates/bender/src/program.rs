//! Test-program representation and builder.
//!
//! A test program is a tree of timed commands and counted loops, mirroring
//! how DRAM Bender programs express hammering kernels: a small body of
//! commands with explicit inter-command delays, repeated millions of times.

use pud_dram::{BankId, DataPattern, Picos, RowAddr};

use crate::command::{DramCommand, TimedCommand};

/// One step of a test program.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// A single timed command.
    Cmd(TimedCommand),
    /// A counted loop over a sub-program.
    Loop {
        /// Iteration count.
        count: u64,
        /// Loop body.
        body: Vec<Step>,
    },
}

impl Step {
    /// Total wall-clock duration of this step.
    pub fn duration(&self) -> Picos {
        match self {
            Step::Cmd(tc) => tc.delay_after,
            Step::Loop { count, body } => {
                let body_time = body
                    .iter()
                    .fold(Picos::ZERO, |acc, s| acc.saturating_add(s.duration()));
                body_time.saturating_mul(*count)
            }
        }
    }

    /// Total number of ACT commands issued by this step.
    pub fn act_count(&self) -> u64 {
        match self {
            Step::Cmd(tc) => matches!(tc.cmd, DramCommand::Act { .. }) as u64,
            Step::Loop { count, body } => count * body.iter().map(Step::act_count).sum::<u64>(),
        }
    }

    /// Total number of commands (of any kind) issued by this step — the
    /// unit the fault-injection clock (`crate::fault`) advances in.
    pub fn cmd_count(&self) -> u64 {
        match self {
            Step::Cmd(_) => 1,
            Step::Loop { count, body } => {
                count.saturating_mul(body.iter().map(Step::cmd_count).sum::<u64>())
            }
        }
    }

    /// Whether this step is a command a loop replay may elide: plain
    /// ACT/PRE/PREA/NOP steps have no per-iteration observable output
    /// (no captured reads, no data writes, no refresh sweeps), so a loop
    /// whose body is made entirely of them can be warmed twice and then
    /// replayed as bulk hammer events. Both the interpreter's loop
    /// batching and the compiler's `Block` lowering use this predicate.
    pub fn is_batchable_cmd(&self) -> bool {
        matches!(
            self,
            Step::Cmd(tc) if matches!(
                tc.cmd,
                DramCommand::Act { .. }
                    | DramCommand::Pre { .. }
                    | DramCommand::PreAll
                    | DramCommand::Nop
            )
        )
    }
}

/// A complete test program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TestProgram {
    steps: Vec<Step>,
}

impl TestProgram {
    /// Creates an empty program.
    pub fn new() -> TestProgram {
        TestProgram::default()
    }

    /// The program's steps.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Total wall-clock duration of the program.
    pub fn duration(&self) -> Picos {
        self.steps
            .iter()
            .fold(Picos::ZERO, |acc, s| acc.saturating_add(s.duration()))
    }

    /// Total number of ACT commands the program issues.
    pub fn act_count(&self) -> u64 {
        self.steps.iter().map(Step::act_count).sum()
    }

    /// Total number of commands (of any kind) the program issues.
    pub fn cmd_count(&self) -> u64 {
        self.steps.iter().map(Step::cmd_count).sum()
    }

    /// Appends an activate command followed by `delay`.
    pub fn act(&mut self, bank: BankId, row: RowAddr, delay: Picos) -> &mut TestProgram {
        self.push_cmd(DramCommand::Act { bank, row }, delay)
    }

    /// Appends a precharge command followed by `delay`.
    pub fn pre(&mut self, bank: BankId, delay: Picos) -> &mut TestProgram {
        self.push_cmd(DramCommand::Pre { bank }, delay)
    }

    /// Appends a read of the open row.
    pub fn rd(&mut self, bank: BankId, delay: Picos) -> &mut TestProgram {
        self.push_cmd(DramCommand::Rd { bank }, delay)
    }

    /// Appends a pattern write to the open row(s).
    pub fn wr(&mut self, bank: BankId, pattern: DataPattern, delay: Picos) -> &mut TestProgram {
        self.push_cmd(DramCommand::Wr { bank, pattern }, delay)
    }

    /// Appends a refresh command followed by `delay`.
    pub fn refresh(&mut self, delay: Picos) -> &mut TestProgram {
        self.push_cmd(DramCommand::Ref, delay)
    }

    /// Appends a pure delay.
    pub fn wait(&mut self, delay: Picos) -> &mut TestProgram {
        self.push_cmd(DramCommand::Nop, delay)
    }

    /// Appends a counted loop built by `f`.
    pub fn repeat(&mut self, count: u64, f: impl FnOnce(&mut TestProgram)) -> &mut TestProgram {
        let mut body = TestProgram::new();
        f(&mut body);
        self.steps.push(Step::Loop {
            count,
            body: body.steps,
        });
        self
    }

    /// Appends all steps of another program.
    pub fn extend(&mut self, other: &TestProgram) -> &mut TestProgram {
        self.steps.extend(other.steps.iter().cloned());
        self
    }

    fn push_cmd(&mut self, cmd: DramCommand, delay_after: Picos) -> &mut TestProgram {
        self.steps
            .push(Step::Cmd(TimedCommand { cmd, delay_after }));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let mut p = TestProgram::new();
        p.act(BankId(0), RowAddr(1), Picos::from_ns(36.0))
            .pre(BankId(0), Picos::from_ns(15.0));
        assert_eq!(p.steps().len(), 2);
        assert_eq!(p.duration(), Picos::from_ns(51.0));
        assert_eq!(p.act_count(), 1);
    }

    #[test]
    fn loops_multiply_duration_and_acts() {
        let mut p = TestProgram::new();
        p.repeat(1000, |b| {
            b.act(BankId(0), RowAddr(1), Picos::from_ns(36.0))
                .pre(BankId(0), Picos::from_ns(15.0))
                .act(BankId(0), RowAddr(3), Picos::from_ns(36.0))
                .pre(BankId(0), Picos::from_ns(15.0));
        });
        assert_eq!(p.act_count(), 2000);
        assert_eq!(p.duration(), Picos::from_ns(102_000.0));
    }

    #[test]
    fn nested_loops() {
        let mut p = TestProgram::new();
        p.repeat(10, |outer| {
            outer.repeat(5, |inner| {
                inner.act(BankId(0), RowAddr(0), Picos::from_ns(1.0));
            });
            outer.refresh(Picos::from_ns(350.0));
        });
        assert_eq!(p.act_count(), 50);
    }

    #[test]
    fn empty_program() {
        let p = TestProgram::new();
        assert_eq!(p.duration(), Picos::ZERO);
        assert_eq!(p.act_count(), 0);
        assert!(p.steps().is_empty());
    }
}
