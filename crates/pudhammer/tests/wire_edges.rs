//! Edge-case coverage for the `fleet::wire` frame protocol, shared by the
//! shard coordinator and the `repro serve` query path.
//!
//! Three invariant families:
//!
//! 1. **Truncation at every byte boundary.** For every frame type, a
//!    stream cut anywhere inside the frame decodes as a typed
//!    [`WireError::Truncated`] — never a panic, a hang, or a phantom
//!    frame. A cut exactly *between* frames is a clean EOF.
//! 2. **Ordering.** Interleaved Progress/Done sequences decode in exact
//!    send order, both through the blocking [`FrameReader`] and the
//!    timeout-guarded [`FrameStream`].
//! 3. **Fixed-seed fuzz.** Seeded mutations (bit flips, truncations,
//!    garbage splices) of a pristine multi-frame stream never panic the
//!    decoder, never make it allocate past the frame cap, and every
//!    frame it does yield before the first error is byte-equal to a
//!    pristine prefix frame (mutations downstream cannot corrupt frames
//!    upstream). Mirrors the checkpoint corruption suite; a failure is a
//!    deterministic one-command repro.

use pud_disturb::rng::mix_all;
use pudhammer::fleet::wire::{Frame, FrameReader, FrameStream, Heartbeat, QueryStatus, WireError};

const FUZZ_SEED: u64 = 0x717E_ED6E_CA5E_0001;
const CASES: u64 = 300;

/// One exemplar of every frame type, exercising empty and non-ASCII
/// strings, zero and max-ish integers, and every query status.
fn exemplars() -> Vec<Frame> {
    let mut frames = vec![
        Frame::Hello {
            shard: 0,
            count: 1,
            fingerprint: u64::MAX,
            target: "table2".to_string(),
            attempt: 0,
        },
        Frame::Progress {
            commands: 1,
            items_done: 2,
            items_total: 3,
            retries: 0,
            quarantined: 0,
            units_done: u64::MAX,
        },
        Frame::Done {
            units_done: 7,
            retries: 1,
            quarantined: 0,
            cancelled: true,
            peak_rss_kb: 123_456,
            write_error: false,
        },
        Frame::Query {
            id: 42,
            key: "family=SK Hynix-A-4Gb;chip=0;pattern=rh-ds".to_string(),
            deadline_ms: 1500,
        },
    ];
    for status in [
        QueryStatus::Ok,
        QueryStatus::Overloaded,
        QueryStatus::Degraded,
        QueryStatus::Unavailable,
        QueryStatus::Expired,
        QueryStatus::BadRequest,
    ] {
        frames.push(Frame::Response {
            id: 9,
            status,
            cached: status == QueryStatus::Ok,
            value: "victim=3 hc_first=78592 — π".to_string(),
            detail: String::new(),
        });
    }
    frames
}

fn encode(frames: &[Frame]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for f in frames {
        f.write_to(&mut bytes).expect("encode");
    }
    bytes
}

#[test]
fn every_frame_type_round_trips() {
    for frame in exemplars() {
        let bytes = encode(std::slice::from_ref(&frame));
        let mut reader = FrameReader::new(bytes.as_slice());
        assert_eq!(reader.next_frame().expect("decode"), Some(frame.clone()));
        assert_eq!(reader.next_frame().expect("eof"), None);
        assert_eq!(reader.offset(), bytes.len() as u64, "offset tracks bytes");
    }
}

#[test]
fn truncation_at_every_byte_boundary_is_typed_never_a_panic() {
    for frame in exemplars() {
        let bytes = encode(std::slice::from_ref(&frame));
        for cut in 0..bytes.len() {
            let mut reader = FrameReader::new(&bytes[..cut]);
            let got = reader.next_frame();
            if cut == 0 {
                assert_eq!(got.expect("clean eof"), None, "cut at 0 is EOF");
            } else {
                match got {
                    Err(WireError::Truncated) => {}
                    other => panic!("{frame:?} cut at {cut}/{}: {other:?}", bytes.len()),
                }
            }
        }
    }
}

#[test]
fn truncation_mid_stream_preserves_all_complete_frames() {
    let frames = exemplars();
    let bytes = encode(&frames);
    // Cut exactly after each complete frame: every prior frame decodes,
    // then clean EOF. One byte later: every prior frame, then Truncated.
    let mut boundary = 0usize;
    for (i, frame) in frames.iter().enumerate() {
        boundary += encode(std::slice::from_ref(frame)).len();
        let mut reader = FrameReader::new(&bytes[..boundary]);
        for expect in &frames[..=i] {
            assert_eq!(reader.next_frame().expect("frame"), Some(expect.clone()));
        }
        assert_eq!(reader.next_frame().expect("eof"), None);
        if boundary < bytes.len() {
            let mut reader = FrameReader::new(&bytes[..boundary + 1]);
            for expect in &frames[..=i] {
                assert_eq!(reader.next_frame().expect("frame"), Some(expect.clone()));
            }
            assert!(matches!(reader.next_frame(), Err(WireError::Truncated)));
        }
    }
}

#[test]
fn interleaved_progress_done_order_is_preserved() {
    let sequence = vec![
        Frame::Hello {
            shard: 1,
            count: 2,
            fingerprint: 3,
            target: "fig4".to_string(),
            attempt: 0,
        },
        Frame::Progress {
            commands: 10,
            items_done: 1,
            items_total: 4,
            retries: 0,
            quarantined: 0,
            units_done: 1,
        },
        Frame::Progress {
            commands: 20,
            items_done: 2,
            items_total: 4,
            retries: 1,
            quarantined: 0,
            units_done: 2,
        },
        Frame::Done {
            units_done: 4,
            retries: 1,
            quarantined: 0,
            cancelled: false,
            peak_rss_kb: 0,
            write_error: false,
        },
        // A second epoch on the same stream (respawned worker reusing the
        // connection shape): ordering must still hold after a Done.
        Frame::Progress {
            commands: 30,
            items_done: 3,
            items_total: 4,
            retries: 1,
            quarantined: 1,
            units_done: 3,
        },
        Frame::Done {
            units_done: 4,
            retries: 2,
            quarantined: 1,
            cancelled: true,
            peak_rss_kb: 9,
            write_error: true,
        },
    ];
    let bytes = encode(&sequence);
    // Blocking reader.
    let mut reader = FrameReader::new(bytes.as_slice());
    for expect in &sequence {
        assert_eq!(reader.next_frame().expect("frame"), Some(expect.clone()));
    }
    assert_eq!(reader.next_frame().expect("eof"), None);
    // Timeout-guarded stream: same frames, same order, then Eof forever.
    let stream = FrameStream::spawn(std::io::Cursor::new(bytes));
    let wait = std::time::Duration::from_secs(5);
    for expect in &sequence {
        match stream.next_within(wait) {
            Some(Heartbeat::Frame(frame)) => assert_eq!(&frame, expect),
            other => panic!("expected {expect:?}, got {other:?}"),
        }
    }
    assert!(matches!(stream.next_within(wait), Some(Heartbeat::Eof)));
    assert!(matches!(stream.next_within(wait), Some(Heartbeat::Eof)));
}

/// One seeded mutation of the pristine stream bytes (never a no-op).
fn mutate(case: u64, bytes: &[u8]) -> Vec<u8> {
    let draw = |k: u64| mix_all(&[FUZZ_SEED, case, k]);
    let mut out = bytes.to_vec();
    match draw(0) % 4 {
        0 => {
            // Flip one bit anywhere.
            let at = (draw(1) % out.len() as u64) as usize;
            out[at] ^= 1 << (draw(2) % 8);
        }
        1 => {
            // Truncate to a strict prefix.
            out.truncate((draw(1) % out.len() as u64) as usize);
        }
        2 => {
            // Overwrite a short span with seeded garbage (may fabricate a
            // huge or zero length word mid-stream).
            let at = (draw(1) % out.len() as u64) as usize;
            let span = 1 + (draw(2) % 8) as usize;
            for (i, b) in out[at..(at + span).min(bytes.len())].iter_mut().enumerate() {
                *b = (draw(3 + i as u64) & 0xFF) as u8;
            }
        }
        _ => {
            // Splice garbage bytes *into* the stream, shifting the tail.
            let at = (draw(1) % (out.len() as u64 + 1)) as usize;
            let garbage: Vec<u8> = (0..1 + draw(2) % 6)
                .map(|i| (draw(8 + i) & 0xFF) as u8)
                .collect();
            out.splice(at..at, garbage);
        }
    }
    if out == bytes {
        out.push(0); // trailing junk so every case asserts something
    }
    out
}

#[test]
fn fuzzed_streams_never_panic_and_never_yield_invented_frames() {
    let pristine_frames = exemplars();
    let pristine = encode(&pristine_frames);
    for case in 0..CASES {
        let mutated = mutate(case, &pristine);
        let mut reader = FrameReader::new(mutated.as_slice());
        let mut decoded = Vec::new();
        let verdict = loop {
            // Bounded: each iteration consumes ≥5 bytes or terminates, so
            // the loop cannot spin; the cap bounds each allocation.
            match reader.next_frame() {
                Ok(Some(frame)) => decoded.push(frame),
                Ok(None) => break Ok(()),
                Err(e) => break Err(e),
            }
        };
        // Decoded frames before the first error must be a prefix of the
        // pristine sequence *or* differ only where the mutation landed —
        // a bit flip inside one frame's payload may alter that frame's
        // fields, but frames are length-delimited, so any frame whose
        // bytes were untouched must decode byte-equal. We assert the
        // strong form for the two mutation kinds that cannot alter
        // payload bytes (truncation never edits, splice-at-end never
        // edits): every decoded frame equals its pristine counterpart.
        if mutated.len() <= pristine.len()
            && pristine.starts_with(&mutated[..mutated.len().min(pristine.len())])
        {
            for (got, expect) in decoded.iter().zip(&pristine_frames) {
                assert_eq!(got, expect, "case {case}: prefix frame corrupted");
            }
        }
        assert!(
            decoded.len() <= pristine_frames.len() + 4,
            "case {case}: decoder invented {} frames from {} pristine",
            decoded.len(),
            pristine_frames.len()
        );
        // Typed errors only; message text for length-word damage names an
        // offset (the debugging contract).
        if let Err(WireError::Malformed(msg)) = &verdict {
            assert!(
                msg.contains("byte offset")
                    || msg.contains("unknown")
                    || msg.contains("missing")
                    || msg.contains("bad ")
                    || msg.contains("expected")
                    || msg.contains("not valid")
                    || msg.contains("invalid"),
                "case {case}: untyped malformed message: {msg}"
            );
        }
    }
}

#[test]
fn zero_and_oversized_length_words_name_their_offset_on_shared_paths() {
    // One good frame, then a zero length word: the error names the second
    // frame's start offset on both the reader and the stream path.
    let good = encode(&[Frame::Done {
        units_done: 1,
        retries: 0,
        quarantined: 0,
        cancelled: false,
        peak_rss_kb: 0,
        write_error: false,
    }]);
    let offset = good.len();
    let mut bytes = good.clone();
    bytes.extend_from_slice(&[0, 0, 0, 0]);
    let mut reader = FrameReader::new(bytes.as_slice());
    assert!(matches!(reader.next_frame(), Ok(Some(_))));
    match reader.next_frame() {
        Err(WireError::Malformed(msg)) => {
            assert!(msg.contains(&format!("byte offset {offset}")), "{msg}");
        }
        other => panic!("zero length word: {other:?}"),
    }
    let stream = FrameStream::spawn(std::io::Cursor::new(bytes));
    let wait = std::time::Duration::from_secs(5);
    assert!(matches!(
        stream.next_within(wait),
        Some(Heartbeat::Frame(_))
    ));
    match stream.next_within(wait) {
        Some(Heartbeat::Err(WireError::Malformed(msg))) => {
            assert!(msg.contains(&format!("byte offset {offset}")), "{msg}");
        }
        other => panic!("stream zero length word: {other:?}"),
    }
    // Oversized: a length word past the cap must be rejected without
    // allocating the promised buffer.
    let mut bytes = good;
    bytes.extend_from_slice(&u32::MAX.to_le_bytes());
    let mut reader = FrameReader::new(bytes.as_slice());
    assert!(matches!(reader.next_frame(), Ok(Some(_))));
    match reader.next_frame() {
        Err(WireError::Malformed(msg)) => {
            assert!(msg.contains("exceeds cap"), "{msg}");
            assert!(msg.contains(&format!("byte offset {offset}")), "{msg}");
        }
        other => panic!("oversized length word: {other:?}"),
    }
}
