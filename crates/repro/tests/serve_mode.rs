//! End-to-end tests of `repro serve` + `repro query`: served values must
//! be byte-identical to in-process computation under concurrent clients,
//! the degradation ladder must answer with typed verdicts (`Overloaded`
//! at queue-depth 0, `Degraded` past the simulation budget, `Expired`
//! past a deadline) instead of stalling, the seeded `--fault-client`
//! chaos mode must never wedge the server, and a SIGTERM drain must
//! commit the profile store so a reopened server answers from cache.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};
use std::time::Duration;

const KEY_A: &str = "family=SK Hynix-A-4Gb;chip=0;pattern=rh-ds";
const KEY_B: &str = "family=Micron-B-4Gb;chip=1;pattern=comra-ds";
const KEY_C: &str = "family=SK Hynix-A-4Gb;chip=0;pattern=simra-4;dp=wcdp";

fn repro() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
    // A fault seed leaking in from CI's fault-tolerance job would make
    // on-demand computations retry nondeterministically; these tests seed
    // faults explicitly where they want them.
    cmd.env_remove("PUD_FAULT_SEED");
    cmd
}

fn temp_store(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("pud-serve-e2e-{name}-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

/// Starts a server on an ephemeral port and returns the child plus the
/// bound address parsed from its single stdout line.
fn start_server(store: &PathBuf, extra: &[&str]) -> (Child, String) {
    let mut child = repro()
        .arg("serve")
        .arg("--store")
        .arg(store)
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    let mut line = String::new();
    BufReader::new(child.stdout.as_mut().expect("stdout piped"))
        .read_line(&mut line)
        .expect("read listen line");
    let addr = line
        .trim()
        .strip_prefix("serve: listening on ")
        .unwrap_or_else(|| panic!("unexpected serve banner: {line:?}"))
        .to_string();
    (child, addr)
}

/// SIGTERMs the server and asserts the drain completed with the expected
/// exit code, returning its stderr.
fn drain(child: Child, expect_code: i32) -> String {
    let pid = child.id().to_string();
    let _ = Command::new("kill").args(["-TERM", &pid]).status();
    let out = wait_with_deadline(child, Duration::from_secs(30));
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert_eq!(
        out.status.code(),
        Some(expect_code),
        "drain exit: {} stderr:\n{stderr}",
        out.status
    );
    stderr
}

/// `wait_with_output` guarded by a deadline: a wedged server fails the
/// test instead of hanging the whole suite.
fn wait_with_deadline(child: Child, deadline: Duration) -> Output {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(child.wait_with_output().expect("wait server"));
    });
    rx.recv_timeout(deadline)
        .expect("server failed to exit within the test deadline")
}

fn query(addr: &str, key: &str, extra: &[&str]) -> Output {
    repro()
        .args(["query", key, "--connect", addr])
        .args(extra)
        .output()
        .expect("spawn query")
}

fn local(key: &str) -> Output {
    repro()
        .args(["query", key, "--local"])
        .output()
        .expect("spawn local query")
}

fn stdout_of(out: &Output) -> String {
    assert!(
        out.status.success(),
        "query failed: {} stderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout.clone()).expect("utf-8 stdout")
}

#[test]
fn served_values_are_byte_identical_to_local_computation_under_concurrency() {
    let store = temp_store("identity");
    let (server, addr) = start_server(&store, &["--serve-workers", "3"]);
    // Fire 9 concurrent clients — three per key, racing the same misses —
    // while the reference values compute in this process.
    let keys = [KEY_A, KEY_B, KEY_C];
    let clients: Vec<(usize, Child)> = (0..9)
        .map(|i| {
            let child = repro()
                .args(["query", keys[i % 3], "--connect", &addr])
                .args(["--timeout", "120"])
                .stdout(Stdio::piped())
                .stderr(Stdio::piped())
                .spawn()
                .expect("spawn client");
            (i % 3, child)
        })
        .collect();
    let reference: Vec<String> = keys.iter().map(|k| stdout_of(&local(k))).collect();
    for (key_idx, client) in clients {
        let out = wait_with_deadline(client, Duration::from_secs(120));
        assert_eq!(
            stdout_of(&out),
            reference[key_idx],
            "served value for {} diverged",
            keys[key_idx]
        );
    }
    // A second round must come from cache — still byte-identical.
    for (i, key) in keys.iter().enumerate() {
        let out = query(&addr, key, &[]);
        assert_eq!(stdout_of(&out), reference[i]);
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("cached=true"),
            "second round should hit the cache"
        );
    }
    let stderr = drain(server, 0);
    assert!(stderr.contains("point(s) committed"), "{stderr}");
    let _ = std::fs::remove_file(&store);
}

#[test]
fn queue_depth_zero_sheds_every_miss_with_typed_overloaded() {
    let store = temp_store("overload");
    let (server, addr) = start_server(&store, &["--queue-depth", "0"]);
    let out = query(&addr, KEY_A, &[]);
    assert_eq!(out.status.code(), Some(11), "Overloaded exit code");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("status=overloaded"), "{stderr}");
    assert!(out.stdout.is_empty(), "a shed query prints no value");
    drain(server, 0);
    let _ = std::fs::remove_file(&store);
}

#[test]
fn exhausted_sim_budget_degrades_misses_while_cache_hits_keep_answering() {
    let store = temp_store("degrade");
    let (server, addr) = start_server(&store, &["--sim-budget", "1"]);
    // The budget's one computation.
    let first = query(&addr, KEY_A, &["--timeout", "120"]);
    let value = stdout_of(&first);
    // Budget spent: a different key degrades with a typed verdict...
    let miss = query(&addr, KEY_B, &[]);
    assert_eq!(miss.status.code(), Some(12), "Degraded exit code");
    assert!(
        String::from_utf8_lossy(&miss.stderr).contains("status=degraded"),
        "{}",
        String::from_utf8_lossy(&miss.stderr)
    );
    // ...while the cached point keeps answering, byte-identical.
    let hit = query(&addr, KEY_A, &[]);
    assert_eq!(stdout_of(&hit), value);
    assert!(String::from_utf8_lossy(&hit.stderr).contains("cached=true"));
    drain(server, 0);
    let _ = std::fs::remove_file(&store);
}

#[test]
fn a_one_millisecond_deadline_expires_with_a_typed_verdict() {
    let store = temp_store("deadline");
    let (server, addr) = start_server(&store, &[]);
    let out = query(&addr, KEY_C, &["--deadline-ms", "1"]);
    assert_eq!(out.status.code(), Some(20), "Expired exit code");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("status=expired"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    drain(server, 0);
    let _ = std::fs::remove_file(&store);
}

#[test]
fn seeded_client_chaos_never_wedges_the_server() {
    let store = temp_store("chaos");
    // A small idle timeout so slow-loris connections are cut quickly and
    // the chaos run (and the drain after it) stays fast.
    let (server, addr) = start_server(&store, &["--idle-timeout", "2"]);
    let chaos = repro()
        .args(["query", KEY_A, "--connect", &addr])
        .args([
            "--fault-client",
            "103",
            "--repeat",
            "16",
            "--timeout",
            "120",
        ])
        .output()
        .expect("spawn chaos client");
    let stderr = String::from_utf8_lossy(&chaos.stderr).to_string();
    assert!(
        chaos.status.success(),
        "chaos client: {} stderr:\n{stderr}",
        chaos.status
    );
    // The curated seed exercises every misbehavior kind (asserted in the
    // pud-bender plan tests) and the post-chaos probe answered.
    assert!(stderr.contains("post-chaos probe answered"), "{stderr}");
    // A clean client still gets the right bytes after the abuse.
    let out = query(&addr, KEY_A, &[]);
    assert_eq!(stdout_of(&out), stdout_of(&local(KEY_A)));
    drain(server, 0);
    let _ = std::fs::remove_file(&store);
}

#[test]
fn sigterm_drain_commits_the_store_and_a_reopened_server_answers_from_cache() {
    let store = temp_store("drain-commit");
    let (server, addr) = start_server(&store, &[]);
    let value = stdout_of(&query(&addr, KEY_B, &["--timeout", "120"]));
    drain(server, 0);
    // The committed store passes offline verification...
    let fsck = repro().arg("fsck").arg(&store).output().expect("fsck");
    assert!(
        fsck.status.success(),
        "fsck after drain: {} {}",
        fsck.status,
        String::from_utf8_lossy(&fsck.stderr)
    );
    // ...and a reopened server answers the same key from cache without
    // recomputing, byte-identical.
    let (server, addr) = start_server(&store, &["--sim-budget", "0"]);
    let out = query(&addr, KEY_B, &[]);
    assert_eq!(stdout_of(&out), value, "reopened value diverged");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("cached=true"),
        "reopen must serve from the committed store"
    );
    drain(server, 0);
    let _ = std::fs::remove_file(&store);
}
