//! Calibrated DRAM read-disturbance engine for the PuDHammer reproduction.
//!
//! This crate substitutes for the physical read-disturbance behaviour of the
//! paper's 316 DDR4 chips. It is *phenomenological*: instead of simulating
//! charge transport, it samples per-row vulnerability from distributions
//! calibrated to Table 2 and modulates per-hammer "effective disturbance"
//! through factor curves anchored to the paper's 26 Observations (see
//! [`calib`] for the anchor-by-anchor mapping).
//!
//! # Model summary
//!
//! - Each victim row has two weakest-cell thresholds, one per
//!   [`FlipClass`]: RowHammer-like disturbance (shared by RowHammer,
//!   RowPress, and CoMRA) and SiMRA disturbance, which the paper shows has
//!   the opposite flip direction and different temperature behaviour (§5.3).
//! - Each hammer cycle adds a weight to the victim's class accumulator; the
//!   weight is the product of calibrated factors (access pattern, timing,
//!   temperature, data pattern, on-time, spatial region).
//! - The i-th weakest cell of a row flips when effective progress reaches
//!   `t · i^(1/beta)`; which *data* flips depends on the stored value and
//!   the class's direction mix, which is what makes data patterns matter.
//! - Cross-class coupling reproduces the paper's §6 combined-pattern
//!   results; restoring a row (activation/refresh/rewrite) clears its
//!   accumulators, which is what TRR exploits (§7).
//!
//! # Example
//!
//! ```
//! use pud_disturb::{AggressionKind, DataSummary, DisturbEngine, HammerEvent};
//! use pud_dram::{profiles, BankId, ChipGeometry, DataPattern, RowAddr, RowData};
//!
//! let profile = &profiles::TESTED_MODULES[1]; // SK Hynix 8Gb A-die
//! let mut engine = DisturbEngine::new(profile, ChipGeometry::scaled_for_tests(), 0, 42);
//! let mut victim = RowData::filled(1024, DataPattern::CHECKER_AA);
//! let event = HammerEvent::reference(
//!     BankId(0),
//!     RowAddr(10),
//!     AggressionKind::RowHammerDouble,
//!     DataSummary::from_pattern(DataPattern::CHECKER_55),
//!     500_000,
//! );
//! let flips = engine.hammer(&event, &mut victim);
//! assert!(!flips.is_empty(), "500K double-sided hammers exceed any HC_first");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod calib;
mod curve;
mod engine;
mod event;
pub mod rng;
mod vuln;

pub use batch::{BatchState, BatchStats, FastHasher, FastMap};
pub use curve::{solve_mu_for_inverse_mean, LogLogCurve};
pub use engine::{Bitflip, DisturbEngine};
pub use event::{AggressionKind, DataSummary, FlipClass, HammerEvent};
pub use vuln::{RowVuln, VulnModel};
