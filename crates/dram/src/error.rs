//! Error type for the DRAM model.

use std::error::Error;
use std::fmt;

use crate::types::{BankId, RowAddr};

/// Errors produced by the DRAM device model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DramError {
    /// A row address exceeded the bank's row count.
    RowOutOfRange {
        /// The offending row.
        row: RowAddr,
        /// Number of rows in the bank.
        limit: u32,
    },
    /// A bank index exceeded the chip's bank count.
    BankOutOfRange {
        /// The offending bank.
        bank: BankId,
        /// Number of banks in the chip.
        limit: u8,
    },
    /// Row data had the wrong number of columns for the device.
    WidthMismatch {
        /// Columns the device expects.
        expected: u32,
        /// Columns the data has.
        actual: u32,
    },
    /// Two rows that must share a subarray do not.
    SubarrayMismatch {
        /// First row.
        a: RowAddr,
        /// Second row.
        b: RowAddr,
    },
}

impl fmt::Display for DramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramError::RowOutOfRange { row, limit } => {
                write!(f, "row {row} out of range (bank has {limit} rows)")
            }
            DramError::BankOutOfRange { bank, limit } => {
                write!(f, "bank {bank} out of range (chip has {limit} banks)")
            }
            DramError::WidthMismatch { expected, actual } => {
                write!(
                    f,
                    "row width mismatch: expected {expected} columns, got {actual}"
                )
            }
            DramError::SubarrayMismatch { a, b } => {
                write!(f, "rows {a} and {b} are not in the same subarray")
            }
        }
    }
}

impl Error for DramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DramError::RowOutOfRange {
            row: RowAddr(9),
            limit: 8,
        };
        assert!(e.to_string().contains("R9"));
        assert!(e.to_string().contains("8 rows"));
        let e = DramError::SubarrayMismatch {
            a: RowAddr(1),
            b: RowAddr(600),
        };
        assert!(e.to_string().contains("same subarray"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DramError>();
    }
}
