//! Sampling-based Target Row Refresh.
//!
//! The paper uncovers (via U-TRR) that the tested SK Hynix module uses a
//! sampling-based TRR: the chip probabilistically identifies one aggressor
//! row by sampling the row addresses of the last 450 ACT commands before a
//! TRR-capable REF, then preventively refreshes that row's neighbours (§7).

use std::collections::VecDeque;
use std::sync::Arc;

use pud_bender::ActivityObserver;
use pud_dram::{BankId, RowAddr, RowMapping};
use pud_observe::Counter;

/// Configuration of a sampling TRR mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingTrrConfig {
    /// How many recent ACT commands the sampler draws from (450 in the
    /// uncovered mechanism).
    pub window: usize,
    /// Every `refs_per_trr`-th REF command performs a TRR victim refresh.
    pub refs_per_trr: u64,
    /// Neighbour distance refreshed around the sampled aggressor (±1, ±2).
    pub blast_radius: u32,
}

impl Default for SamplingTrrConfig {
    fn default() -> SamplingTrrConfig {
        SamplingTrrConfig {
            window: 450,
            refs_per_trr: 3,
            blast_radius: 2,
        }
    }
}

/// A sampling-based in-DRAM TRR mechanism.
///
/// Installed on a [`pud_bender::Executor`] as an [`ActivityObserver`]. Key
/// property reproduced from the paper: the mechanism only ever sees the row
/// addresses *on the command bus* — a SiMRA operation that activates 32
/// rows presents just two addresses, so 30 aggressors go unnoticed
/// (Observation 26).
#[derive(Debug, Clone)]
pub struct SamplingTrr {
    config: SamplingTrrConfig,
    mapping: RowMapping,
    recent: VecDeque<(BankId, RowAddr)>,
    sampled: Option<(BankId, RowAddr)>,
    seen_in_window: u64,
    refs: u64,
    trr_refreshes: u64,
    rng: u64,
    capable_refs_metric: Arc<Counter>,
    victim_refreshes_metric: Arc<Counter>,
}

impl SamplingTrr {
    /// Creates the mechanism for a chip with the given row mapping (the
    /// in-DRAM logic knows its own topology, so it refreshes *physical*
    /// neighbours).
    pub fn new(config: SamplingTrrConfig, mapping: RowMapping, seed: u64) -> SamplingTrr {
        SamplingTrr {
            config,
            mapping,
            recent: VecDeque::with_capacity(config.window),
            sampled: None,
            seen_in_window: 0,
            refs: 0,
            trr_refreshes: 0,
            rng: seed | 1,
            capable_refs_metric: pud_observe::counter("trr.capable_refs"),
            victim_refreshes_metric: pud_observe::counter("trr.victim_refreshes"),
        }
    }

    /// Number of TRR-capable REFs issued so far.
    pub fn trr_refresh_count(&self) -> u64 {
        self.trr_refreshes
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

impl ActivityObserver for SamplingTrr {
    fn on_act(&mut self, bank: BankId, logical_row: RowAddr) {
        if self.recent.len() == self.config.window {
            self.recent.pop_front();
        }
        self.recent.push_back((bank, logical_row));
        // Reservoir sampling over the ACTs seen since the last TRR REF:
        // each ACT replaces the current sample with probability 1/k.
        self.seen_in_window += 1;
        if self.next_u64().is_multiple_of(self.seen_in_window) {
            self.sampled = Some((bank, logical_row));
        }
    }

    fn on_ref(&mut self, _bank_hint: BankId) -> Vec<(BankId, RowAddr)> {
        self.refs += 1;
        if !self.refs.is_multiple_of(self.config.refs_per_trr) {
            return Vec::new();
        }
        self.trr_refreshes += 1;
        self.capable_refs_metric.incr();
        self.seen_in_window = 0;
        let Some((bank, aggressor)) = self.sampled.take() else {
            return Vec::new();
        };
        self.victim_refreshes_metric.incr();
        let phys = self.mapping.to_physical(aggressor);
        let mut victims = Vec::new();
        for d in 1..=self.config.blast_radius {
            for delta in [-(i64::from(d)), i64::from(d)] {
                if let Some(v) = phys.offset(delta) {
                    victims.push((bank, self.mapping.to_logical(v)));
                }
            }
        }
        victims
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trr() -> SamplingTrr {
        SamplingTrr::new(SamplingTrrConfig::default(), RowMapping::Sequential, 9)
    }

    #[test]
    fn refreshes_neighbors_of_sampled_aggressor() {
        let mut t = trr();
        for _ in 0..100 {
            t.on_act(BankId(0), RowAddr(50));
        }
        // Only every third REF is TRR-capable.
        assert!(t.on_ref(BankId(0)).is_empty());
        assert!(t.on_ref(BankId(0)).is_empty());
        let victims = t.on_ref(BankId(0));
        let rows: Vec<u32> = victims.iter().map(|(_, r)| r.0).collect();
        assert!(rows.contains(&49) && rows.contains(&51));
        assert!(rows.contains(&48) && rows.contains(&52));
        assert_eq!(t.trr_refresh_count(), 1);
    }

    #[test]
    fn sample_is_consumed_by_trr_ref() {
        let mut t = trr();
        t.on_act(BankId(0), RowAddr(7));
        for _ in 0..2 {
            let _ = t.on_ref(BankId(0));
        }
        assert!(!t.on_ref(BankId(0)).is_empty());
        // Next TRR REF has no sample: nothing refreshed.
        for _ in 0..2 {
            let _ = t.on_ref(BankId(0));
        }
        assert!(t.on_ref(BankId(0)).is_empty());
    }

    #[test]
    fn dominant_row_is_sampled_most_often() {
        let mut t = trr();
        let mut hot = 0;
        let trials = 300;
        for _ in 0..trials {
            for i in 0..90u32 {
                // 75% of ACTs hit the "dummy" row 100, 25% the aggressor 50
                // (matching the §7 pattern's 468:156 ratio).
                let row = if i % 4 == 0 { 50 } else { 100 };
                t.on_act(BankId(0), RowAddr(row));
            }
            let _ = t.on_ref(BankId(0));
            let _ = t.on_ref(BankId(0));
            let victims = t.on_ref(BankId(0));
            if victims.iter().any(|(_, r)| r.0 == 99 || r.0 == 101) {
                hot += 1;
            }
        }
        let frac = f64::from(hot) / f64::from(trials);
        assert!(
            (0.55..0.95).contains(&frac),
            "dummy row should dominate sampling, got {frac}"
        );
    }

    #[test]
    fn mapping_is_applied_to_victims() {
        let mut t = SamplingTrr::new(
            SamplingTrrConfig {
                blast_radius: 1,
                ..SamplingTrrConfig::default()
            },
            RowMapping::MirrorPairs,
            9,
        );
        // Logical 4 = physical 5; neighbours physical 4,6 = logical 5,7.
        t.on_act(BankId(1), RowAddr(4));
        let _ = t.on_ref(BankId(0));
        let _ = t.on_ref(BankId(0));
        let victims = t.on_ref(BankId(0));
        let rows: Vec<u32> = victims.iter().map(|(_, r)| r.0).collect();
        assert_eq!(victims[0].0, BankId(1));
        assert!(rows.contains(&5) && rows.contains(&7), "{rows:?}");
    }
}
