//! Disturbance events: what one hammer cycle looks like from a victim row's
//! point of view.

use pud_dram::{BankId, Celsius, DataPattern, Picos, RowAddr, RowData};

/// The two flip-direction classes the model distinguishes.
///
/// RowHammer, RowPress, and CoMRA aggression share a class (weak 0→1 data
/// bias); SiMRA aggression forms its own class with the opposite, strongly
/// biased direction (Observation 14) and its own weakest-cell population
/// (the paper hypothesizes a different silicon-level mechanism, §5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlipClass {
    /// RowHammer-like disturbance (dominant data direction 0→1).
    RowHammer,
    /// SiMRA disturbance (dominant data direction 1→0).
    Simra,
}

impl FlipClass {
    /// Fraction of weak cells flipping in the class's dominant direction.
    pub fn dominant_fraction(self) -> f64 {
        match self {
            FlipClass::RowHammer => crate::calib::RH_DOMINANT_FRACTION,
            FlipClass::Simra => crate::calib::SIMRA_DOMINANT_FRACTION,
        }
    }

    /// The data value a dominant-direction flip *starts from* (source bit).
    pub fn dominant_source_bit(self) -> bool {
        match self {
            FlipClass::RowHammer => false, // 0 → 1
            FlipClass::Simra => true,      // 1 → 0
        }
    }

    /// Eligible-cell fraction at the reference (worst-case data pattern)
    /// condition, used to normalize the eligibility factor to 1.0.
    pub fn reference_eligibility(self) -> f64 {
        match self {
            // WCDP victim is a checkerboard: half the bits can move each way.
            FlipClass::RowHammer => 0.5,
            // WCDP victim is 0xFF: every dominant-direction cell can flip.
            FlipClass::Simra => crate::calib::SIMRA_DOMINANT_FRACTION,
        }
    }
}

/// The access pattern producing the aggression, as seen by one victim row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggressionKind {
    /// Single-sided RowHammer (`ACT a – PRE` loop, one adjacent aggressor).
    RowHammerSingle,
    /// Double-sided RowHammer (victim sandwiched by alternating aggressors).
    RowHammerDouble,
    /// Far double-sided RowHammer: two aggressors far apart, victim
    /// adjacent to one of them (Fig. 7's comparison pattern; the aggressor's
    /// `t_AggOFF` is effectively doubled).
    RowHammerFarDouble,
    /// Double-sided CoMRA (in-DRAM copy pair sandwiching the victim,
    /// Fig. 3a).
    ComraDouble {
        /// The violated PRE→ACT latency (7.5 ns nominal attack value).
        pre_to_act: Picos,
        /// Whether the copy direction is reversed (dst → src), Fig. 10.
        reversed: bool,
    },
    /// Single-sided CoMRA (src and dst far apart, victim adjacent to one,
    /// Fig. 3b).
    ComraSingle {
        /// The violated PRE→ACT latency.
        pre_to_act: Picos,
        /// Whether the copy direction is reversed.
        reversed: bool,
    },
    /// Double-sided SiMRA: the victim is sandwiched between two
    /// simultaneously activated rows (Fig. 12a).
    SimraDouble {
        /// Number of simultaneously activated rows (2, 4, 8, 16, or 32).
        n_rows: u8,
        /// ACT→PRE delay of the ACT‑PRE‑ACT sequence.
        act_to_pre: Picos,
        /// PRE→ACT delay of the ACT‑PRE‑ACT sequence.
        pre_to_act: Picos,
    },
    /// Single-sided SiMRA: the victim neighbours the activated group
    /// without being sandwiched (Fig. 12b).
    SimraSingle {
        /// Number of simultaneously activated rows.
        n_rows: u8,
        /// ACT→PRE delay.
        act_to_pre: Picos,
        /// PRE→ACT delay.
        pre_to_act: Picos,
    },
}

impl AggressionKind {
    /// The flip class this aggression charges.
    ///
    /// Only *sandwiched* SiMRA victims experience the SiMRA mechanism;
    /// non-sandwiched neighbours of a SiMRA group see RowHammer-like
    /// disturbance (Fig. 16's single-sided SiMRA behaves like a somewhat
    /// stronger single-sided RowHammer).
    pub fn flip_class(self) -> FlipClass {
        match self {
            AggressionKind::SimraDouble { .. } => FlipClass::Simra,
            _ => FlipClass::RowHammer,
        }
    }

    /// Whether this is a CoMRA variant.
    pub fn is_comra(self) -> bool {
        matches!(
            self,
            AggressionKind::ComraDouble { .. } | AggressionKind::ComraSingle { .. }
        )
    }

    /// Whether this is a SiMRA variant.
    pub fn is_simra(self) -> bool {
        matches!(
            self,
            AggressionKind::SimraDouble { .. } | AggressionKind::SimraSingle { .. }
        )
    }
}

/// Summary statistics of aggressor-row contents that modulate coupling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataSummary {
    /// Fraction of bits set to one.
    pub ones_fraction: f64,
    /// Fraction of adjacent bit pairs that differ (1.0 for a perfect
    /// checkerboard, 0.0 for a solid pattern).
    pub checker_fraction: f64,
}

impl DataSummary {
    /// Summarizes actual row contents (samples up to the first 512 bits —
    /// patterns are byte-periodic so this is exact for pattern fills).
    pub fn from_row(row: &RowData) -> DataSummary {
        let n = row.cols().min(512);
        let mut ones = 0u32;
        let mut toggles = 0u32;
        let mut prev = row.bit(0);
        if prev {
            ones += 1;
        }
        for c in 1..n {
            let b = row.bit(c);
            if b {
                ones += 1;
            }
            if b != prev {
                toggles += 1;
            }
            prev = b;
        }
        DataSummary {
            ones_fraction: f64::from(ones) / f64::from(n),
            checker_fraction: f64::from(toggles) / f64::from(n - 1),
        }
    }

    /// Summarizes a repeating one-byte fill pattern.
    pub fn from_pattern(pattern: DataPattern) -> DataSummary {
        let byte = pattern.0;
        let toggles = (0..7u32)
            .filter(|&i| ((byte >> i) & 1) != ((byte >> (i + 1)) & 1))
            .count() as f64
            + if ((byte >> 7) & 1) != (byte & 1) {
                1.0
            } else {
                0.0
            };
        DataSummary {
            ones_fraction: pattern.ones_fraction(),
            checker_fraction: toggles / 8.0,
        }
    }

    /// A quantized fingerprint for keying per-row jitters.
    pub(crate) fn fingerprint(&self) -> u64 {
        let o = (self.ones_fraction * 16.0).round() as u64;
        let c = (self.checker_fraction * 16.0).round() as u64;
        (o << 8) | c
    }
}

/// One batch of identical hammer cycles applied to one victim row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HammerEvent {
    /// Bank containing the victim.
    pub bank: BankId,
    /// Physical address of the victim row.
    pub victim: RowAddr,
    /// The aggression pattern.
    pub kind: AggressionKind,
    /// How long the aggressor row(s) stay open per cycle (`t_AggOn`;
    /// nominal value is `t_RAS` = 36 ns — larger values are RowPress-style
    /// aggression, Fig. 8/17).
    pub t_aggon: Picos,
    /// Chip temperature during the aggression.
    pub temperature: Celsius,
    /// Contents of the aggressor row(s).
    pub aggressor_data: DataSummary,
    /// Physical distance between the victim and its nearest aggressor
    /// (1 = immediately adjacent).
    pub distance: u32,
    /// Number of identical hammer cycles in this batch.
    pub repeat: u64,
}

impl HammerEvent {
    /// A convenience constructor for the common reference conditions
    /// (80 °C, `t_AggOn = t_RAS`, distance 1).
    pub fn reference(
        bank: BankId,
        victim: RowAddr,
        kind: AggressionKind,
        aggressor_data: DataSummary,
        repeat: u64,
    ) -> HammerEvent {
        HammerEvent {
            bank,
            victim,
            kind,
            t_aggon: Picos::from_ns(crate::calib::T_RAS_NS),
            temperature: Celsius::DEFAULT_TEST,
            aggressor_data,
            distance: 1,
            repeat,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_have_opposite_directions() {
        assert!(!FlipClass::RowHammer.dominant_source_bit());
        assert!(FlipClass::Simra.dominant_source_bit());
    }

    #[test]
    fn simra_double_is_its_own_class() {
        let ds = AggressionKind::SimraDouble {
            n_rows: 4,
            act_to_pre: Picos::from_ns(3.0),
            pre_to_act: Picos::from_ns(3.0),
        };
        let ss = AggressionKind::SimraSingle {
            n_rows: 4,
            act_to_pre: Picos::from_ns(3.0),
            pre_to_act: Picos::from_ns(3.0),
        };
        assert_eq!(ds.flip_class(), FlipClass::Simra);
        assert_eq!(ss.flip_class(), FlipClass::RowHammer);
        assert!(ds.is_simra() && ss.is_simra());
        assert!(!ds.is_comra());
    }

    #[test]
    fn pattern_summaries() {
        let s = DataSummary::from_pattern(DataPattern::CHECKER_55);
        assert_eq!(s.ones_fraction, 0.5);
        assert_eq!(s.checker_fraction, 1.0);
        let s = DataSummary::from_pattern(DataPattern::ZEROS);
        assert_eq!(s.ones_fraction, 0.0);
        assert_eq!(s.checker_fraction, 0.0);
        let s = DataSummary::from_pattern(DataPattern(0x0F));
        assert_eq!(s.ones_fraction, 0.5);
        assert_eq!(s.checker_fraction, 0.25);
    }

    #[test]
    fn row_summary_matches_pattern_summary() {
        for p in DataPattern::TESTED {
            let row = RowData::filled(1024, p);
            let a = DataSummary::from_row(&row);
            let b = DataSummary::from_pattern(p);
            assert!((a.ones_fraction - b.ones_fraction).abs() < 0.01, "{p}");
            assert!(
                (a.checker_fraction - b.checker_fraction).abs() < 0.01,
                "{p}"
            );
        }
    }

    #[test]
    fn fingerprints_distinguish_patterns() {
        let a = DataSummary::from_pattern(DataPattern::ZEROS).fingerprint();
        let b = DataSummary::from_pattern(DataPattern::CHECKER_55).fingerprint();
        let c = DataSummary::from_pattern(DataPattern::ONES).fingerprint();
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }
}
